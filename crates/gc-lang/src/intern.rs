//! Hash-consed tag, type, term, and value nodes: ids, memo tables,
//! free-variable fingerprints, and α-canonicalization.
//!
//! Every [`Tag`], [`Ty`], [`Term`], and [`Value`] node in the crate stores
//! its children as [`TagId`]/[`TyId`]/[`TermId`]/[`ValId`] handles into four
//! global [`ps_ir::Interner`] arenas, so structurally equal subtrees are
//! stored exactly once and *structural equality of whole trees is equality
//! of `u32` ids* (the derived `PartialEq` on nodes compares children by
//! id). On top of the arenas this module keeps side tables, all indexed by
//! id — ids are dense, so each table is an append-only [`ChunkedSlab`]
//! probed by index rather than a `HashMap` (the normalization table for
//! types keeps one slab per dialect):
//!
//! * **normalization memos** — [`crate::tags::normalize`] and
//!   [`crate::moper::normalize_ty`] record their result (and, for tags, the
//!   β-step count, so counting callers see identical numbers on memo hits)
//!   once per node;
//! * **free-variable fingerprints** ([`tag_fv`], [`ty_fv`], [`term_fv`],
//!   [`value_fv`]) — the sorted free variables of a node, computed once and
//!   leaked, which lets [`crate::subst::Subst`] skip no-op substitutions in
//!   O(domain) without walking the tree (generalizing the closed-range fast
//!   path of the environment machine to *every* substitution, at every
//!   level from tags up to whole terms);
//! * **α-canonical forms** ([`canon_tag`], [`canon_ty`]) — each binder is
//!   renamed to a fixed placeholder and each bound variable to its
//!   per-namespace de Bruijn index (spelled `!i` / `!ri` / `!ai`; `!` is
//!   unproducible by surface syntax, and `gensym` uses `%`, so the names
//!   are collision-free). Region *sets* (`∃α:∆` and `∃r∈∆` bounds) are
//!   sorted and deduplicated, matching the set semantics of the paper's
//!   `∆`s. Two nodes are α-equivalent iff their canonical ids are equal,
//!   which makes `alpha_eq` an integer compare after the first call.
//!
//! The *read* side is entirely lock-free: interned nodes are leaked
//! (`&'static`) and published through [`ChunkedSlab`]s — append-only
//! chunked atomic-pointer tables — so dereferencing a [`TagId`] (it
//! implements `Deref<Target = Tag>`) and probing any memo touch no lock at
//! all. This matters for parallel certification: `check_program` fans code
//! blocks over worker threads that deref ids and hit the memos on every
//! node; a shared `RwLock` read on that path makes the threads bounce the
//! lock's cache line and serializes them. Only *interning* (the hash-cons
//! lookup/insert) still takes the `RwLock` around the arena's hash table,
//! and it is never held across recursive work: probe under a read lock,
//! compute unlocked, insert under a short write lock.

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

use ps_ir::{ChunkedSlab, ConcurrentInterner, Symbol};

use crate::syntax::{CodeDef, Dialect, Region, Tag, Term, Ty, Value};

// ----- arenas -------------------------------------------------------------

static TAGS: ConcurrentInterner<Tag> = ConcurrentInterner::new();
static TYS: ConcurrentInterner<Ty> = ConcurrentInterner::new();
static TERMS: ConcurrentInterner<Term> = ConcurrentInterner::new();
static VALS: ConcurrentInterner<Value> = ConcurrentInterner::new();

/// Acquires a read lock even if a writer panicked mid-update. The caches
/// behind these locks are append-only, so a poisoned value is still
/// internally consistent — at worst it misses the entry the panicking
/// thread was about to add.
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-lock counterpart of [`read_lock`].
fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

// Ids are minted only by `intern`, which publishes the node before the id
// escapes, so a missing entry is unreachable.
#[allow(clippy::expect_used)]
fn arena_get<T: 'static>(arena: &ConcurrentInterner<T>, id: u32) -> &'static T {
    arena.get(id).expect("id minted by this arena")
}

/// Interns a tag node, returning its id.
pub fn intern_tag(node: Tag) -> TagId {
    TagId(TAGS.intern(node))
}

/// Interns a type node, returning its id.
pub fn intern_ty(node: Ty) -> TyId {
    TyId(TYS.intern(node))
}

/// Interns a term node, returning its id.
pub fn intern_term(node: Term) -> TermId {
    TermId(TERMS.intern(node))
}

/// Interns a value node, returning its id.
pub fn intern_value(node: Value) -> ValId {
    ValId(VALS.intern(node))
}

/// Handle to an interned [`Tag`] node: `Copy`, compared and hashed as a
/// `u32`. Dereferences to the `&'static` node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(u32);

/// Handle to an interned [`Ty`] node: `Copy`, compared and hashed as a
/// `u32`. Dereferences to the `&'static` node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TyId(u32);

/// Handle to an interned [`Term`] node: `Copy`, compared and hashed as a
/// `u32`. Dereferences to the `&'static` node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

/// Handle to an interned [`Value`] node: `Copy`, compared and hashed as a
/// `u32`. Dereferences to the `&'static` node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValId(u32);

macro_rules! id_impls {
    ($id:ident, $node:ident, $arena:ident, $intern:ident) => {
        impl $id {
            /// The interned node.
            pub fn node(self) -> &'static $node {
                arena_get(&$arena, self.0)
            }

            /// The raw arena index.
            pub fn index(self) -> u32 {
                self.0
            }
        }

        impl Deref for $id {
            type Target = $node;
            fn deref(&self) -> &$node {
                self.node()
            }
        }

        impl fmt::Debug for $id {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.node().fmt(f)
            }
        }

        impl From<$node> for $id {
            fn from(node: $node) -> $id {
                $intern(node)
            }
        }
    };
}

id_impls!(TagId, Tag, TAGS, intern_tag);
id_impls!(TyId, Ty, TYS, intern_ty);
id_impls!(TermId, Term, TERMS, intern_term);
id_impls!(ValId, Value, VALS, intern_value);

// ----- memo tables --------------------------------------------------------

/// An id-indexed memo table: ids are dense arena indices, so the table is
/// an append-only [`ChunkedSlab`] rather than a hash map — a probe is two
/// atomic loads and no lock. Memoized values are deterministic functions of
/// the id, so concurrent writers racing on one entry publish equal values
/// (the loser's box leaks, like every other interned allocation).
type FlatMemo<V> = ChunkedSlab<V>;

static TAG_NORM: FlatMemo<(TagId, u64)> = FlatMemo::new();
/// One per-dialect table (`Basic`, `Forwarding`, `Generational`), replacing
/// the old `(TyId, Dialect)`-keyed map.
static TY_NORM: [FlatMemo<TyId>; 3] = [FlatMemo::new(), FlatMemo::new(), FlatMemo::new()];
static TAG_CANON: FlatMemo<TagId> = FlatMemo::new();
static TY_CANON: FlatMemo<TyId> = FlatMemo::new();
static TAG_FV: FlatMemo<&'static [Symbol]> = FlatMemo::new();
static TY_FV: FlatMemo<&'static TyFv> = FlatMemo::new();
static TERM_FV: FlatMemo<&'static NodeFv> = FlatMemo::new();
static VAL_FV: FlatMemo<&'static NodeFv> = FlatMemo::new();

fn dialect_index(dialect: Dialect) -> usize {
    match dialect {
        Dialect::Basic => 0,
        Dialect::Forwarding => 1,
        Dialect::Generational => 2,
    }
}

fn memo_get<V: Copy + 'static>(memo: &FlatMemo<V>, id: u32) -> Option<V> {
    memo.get(id).copied()
}

fn memo_put<V: Copy + 'static>(memo: &FlatMemo<V>, id: u32, value: V) {
    memo.set(id, Box::leak(Box::new(value)));
}

fn memo_len<V>(memo: &FlatMemo<V>) -> usize {
    memo.count()
}

/// Memoized result of [`crate::tags::normalize`]: normal form and β-step
/// count for the subtree.
pub(crate) fn tag_norm_lookup(id: TagId) -> Option<(TagId, u64)> {
    memo_get(&TAG_NORM, id.index())
}

pub(crate) fn tag_norm_insert(id: TagId, nf: TagId, steps: u64) {
    memo_put(&TAG_NORM, id.index(), (nf, steps));
}

/// Memoized result of [`crate::moper::normalize_ty`] for one dialect.
pub(crate) fn ty_norm_lookup(id: TyId, dialect: Dialect) -> Option<TyId> {
    memo_get(&TY_NORM[dialect_index(dialect)], id.index())
}

pub(crate) fn ty_norm_insert(id: TyId, dialect: Dialect, nf: TyId) {
    memo_put(&TY_NORM[dialect_index(dialect)], id.index(), nf);
}

// ----- free-variable fingerprints -----------------------------------------

/// The free variables of a type node, split by namespace. Each slice is
/// sorted and deduplicated; membership is a binary search.
#[derive(Debug)]
pub struct TyFv {
    /// Free tag variables (`t`, including `AnyArrow` refinements).
    pub tvars: Box<[Symbol]>,
    /// Free region variables (`r`).
    pub rvars: Box<[Symbol]>,
    /// Free type variables (`α`).
    pub avars: Box<[Symbol]>,
}

impl TyFv {
    /// No free variables in any namespace?
    pub fn is_closed(&self) -> bool {
        self.tvars.is_empty() && self.rvars.is_empty() && self.avars.is_empty()
    }
}

fn sorted(mut v: Vec<Symbol>) -> Vec<Symbol> {
    v.sort_unstable();
    v.dedup();
    v
}

/// The sorted free tag variables of a tag, computed once per node.
pub fn tag_fv(id: TagId) -> &'static [Symbol] {
    if let Some(fv) = memo_get(&TAG_FV, id.index()) {
        return fv;
    }
    let mut out: Vec<Symbol> = Vec::new();
    match id.node() {
        Tag::Var(t) | Tag::AnyArrow(t) => out.push(*t),
        Tag::Int => {}
        Tag::Prod(a, b) | Tag::App(a, b) => {
            out.extend_from_slice(tag_fv(*a));
            out.extend_from_slice(tag_fv(*b));
        }
        Tag::Arrow(args) => {
            for a in args.iter() {
                out.extend_from_slice(tag_fv(*a));
            }
        }
        Tag::Exist(t, body) | Tag::Lam(t, body) => {
            out.extend(tag_fv(*body).iter().copied().filter(|x| x != t));
        }
    }
    let leaked: &'static [Symbol] = Box::leak(sorted(out).into_boxed_slice());
    memo_put(&TAG_FV, id.index(), leaked);
    leaked
}

/// The free variables of a type (all three namespaces), computed once per
/// node.
pub fn ty_fv(id: TyId) -> &'static TyFv {
    if let Some(fv) = memo_get(&TY_FV, id.index()) {
        return fv;
    }
    let mut tvars: Vec<Symbol> = Vec::new();
    let mut rvars: Vec<Symbol> = Vec::new();
    let mut avars: Vec<Symbol> = Vec::new();
    {
        fn add_child(
            child: TyId,
            tvars: &mut Vec<Symbol>,
            rvars: &mut Vec<Symbol>,
            avars: &mut Vec<Symbol>,
        ) {
            let fv = ty_fv(child);
            tvars.extend_from_slice(&fv.tvars);
            rvars.extend_from_slice(&fv.rvars);
            avars.extend_from_slice(&fv.avars);
        }
        fn add_rgn(rvars: &mut Vec<Symbol>, rho: &Region) {
            if let Region::Var(r) = rho {
                rvars.push(*r);
            }
        }
        match id.node() {
            Ty::Int => {}
            Ty::Alpha(a) => avars.push(*a),
            Ty::Prod(a, b) | Ty::Sum(a, b) => {
                add_child(*a, &mut tvars, &mut rvars, &mut avars);
                add_child(*b, &mut tvars, &mut rvars, &mut avars);
            }
            Ty::Left(a) | Ty::Right(a) => add_child(*a, &mut tvars, &mut rvars, &mut avars),
            Ty::At(inner, rho) => {
                add_child(*inner, &mut tvars, &mut rvars, &mut avars);
                add_rgn(&mut rvars, rho);
            }
            Ty::M(rho, tag) => {
                add_rgn(&mut rvars, rho);
                tvars.extend_from_slice(tag_fv(*tag));
            }
            Ty::C(r1, r2, tag) | Ty::MGen(r1, r2, tag) => {
                add_rgn(&mut rvars, r1);
                add_rgn(&mut rvars, r2);
                tvars.extend_from_slice(tag_fv(*tag));
            }
            Ty::Code {
                tvars: tv,
                rvars: rv,
                args,
            } => {
                for a in args.iter() {
                    let fv = ty_fv(*a);
                    tvars.extend(
                        fv.tvars
                            .iter()
                            .copied()
                            .filter(|t| !tv.iter().any(|(b, _)| b == t)),
                    );
                    rvars.extend(fv.rvars.iter().copied().filter(|r| !rv.contains(r)));
                    avars.extend_from_slice(&fv.avars);
                }
            }
            Ty::ExistTag { tvar, body, .. } => {
                let fv = ty_fv(*body);
                tvars.extend(fv.tvars.iter().copied().filter(|t| t != tvar));
                rvars.extend_from_slice(&fv.rvars);
                avars.extend_from_slice(&fv.avars);
            }
            Ty::ExistAlpha {
                avar,
                regions,
                body,
            } => {
                for r in regions.iter() {
                    add_rgn(&mut rvars, r);
                }
                let fv = ty_fv(*body);
                tvars.extend_from_slice(&fv.tvars);
                rvars.extend_from_slice(&fv.rvars);
                avars.extend(fv.avars.iter().copied().filter(|a| a != avar));
            }
            Ty::ExistRgn { rvar, bound, body } => {
                for r in bound.iter() {
                    add_rgn(&mut rvars, r);
                }
                let fv = ty_fv(*body);
                tvars.extend_from_slice(&fv.tvars);
                rvars.extend(fv.rvars.iter().copied().filter(|r| r != rvar));
                avars.extend_from_slice(&fv.avars);
            }
            Ty::Trans {
                tags,
                regions,
                args,
                rho,
            } => {
                for t in tags.iter() {
                    tvars.extend_from_slice(tag_fv(*t));
                }
                add_rgn(&mut rvars, rho);
                for r in regions.iter() {
                    add_rgn(&mut rvars, r);
                }
                for a in args.iter() {
                    add_child(*a, &mut tvars, &mut rvars, &mut avars);
                }
            }
        }
    }
    let leaked: &'static TyFv = Box::leak(Box::new(TyFv {
        tvars: sorted(tvars).into_boxed_slice(),
        rvars: sorted(rvars).into_boxed_slice(),
        avars: sorted(avars).into_boxed_slice(),
    }));
    memo_put(&TY_FV, id.index(), leaked);
    leaked
}

// ----- term/value fingerprints --------------------------------------------

/// The free variables of a term or value node, split over all four λGC
/// namespaces. Each slice is sorted and deduplicated; membership is a
/// binary search.
///
/// Unlike the old `value_free_vars` (which assumed code blocks are closed),
/// [`Value::Code`] fingerprints are computed *honestly* through the block's
/// own binders, so a fingerprint miss is a sound reason to skip
/// substitution even on ill-typed inputs.
#[derive(Debug)]
pub struct NodeFv {
    /// Free tag variables (`t`, including `AnyArrow` refinements).
    pub tvars: Box<[Symbol]>,
    /// Free region variables (`r`).
    pub rvars: Box<[Symbol]>,
    /// Free type variables (`α`).
    pub avars: Box<[Symbol]>,
    /// Free value variables (`x`).
    pub xvars: Box<[Symbol]>,
}

impl NodeFv {
    /// No free variables in any namespace?
    pub fn is_closed(&self) -> bool {
        self.tvars.is_empty()
            && self.rvars.is_empty()
            && self.avars.is_empty()
            && self.xvars.is_empty()
    }
}

/// Accumulator for a four-namespace fingerprint under construction.
#[derive(Default)]
struct FvAcc {
    tvars: Vec<Symbol>,
    rvars: Vec<Symbol>,
    avars: Vec<Symbol>,
    xvars: Vec<Symbol>,
}

impl FvAcc {
    fn add_tag(&mut self, tag: &Tag) {
        self.tvars
            .extend_from_slice(tag_fv(intern_tag(tag.clone())));
    }

    fn add_ty(&mut self, sigma: &Ty) {
        let fv = ty_fv(intern_ty(sigma.clone()));
        self.tvars.extend_from_slice(&fv.tvars);
        self.rvars.extend_from_slice(&fv.rvars);
        self.avars.extend_from_slice(&fv.avars);
    }

    fn add_rgn(&mut self, rho: &Region) {
        if let Region::Var(r) = rho {
            self.rvars.push(*r);
        }
    }

    fn add_node(&mut self, fv: &NodeFv) {
        self.tvars.extend_from_slice(&fv.tvars);
        self.rvars.extend_from_slice(&fv.rvars);
        self.avars.extend_from_slice(&fv.avars);
        self.xvars.extend_from_slice(&fv.xvars);
    }

    /// Adds `fv` with some variables of the given namespaces removed
    /// (binder filtering).
    fn add_node_minus(
        &mut self,
        fv: &NodeFv,
        tbind: &[Symbol],
        rbind: &[Symbol],
        abind: &[Symbol],
        xbind: &[Symbol],
    ) {
        self.tvars
            .extend(fv.tvars.iter().copied().filter(|t| !tbind.contains(t)));
        self.rvars
            .extend(fv.rvars.iter().copied().filter(|r| !rbind.contains(r)));
        self.avars
            .extend(fv.avars.iter().copied().filter(|a| !abind.contains(a)));
        self.xvars
            .extend(fv.xvars.iter().copied().filter(|x| !xbind.contains(x)));
    }

    fn add_value(&mut self, v: &Value) {
        self.add_node(value_fv(intern_value(v.clone())));
    }

    fn add_op(&mut self, op: &crate::syntax::Op) {
        use crate::syntax::Op;
        match op {
            Op::Val(v) | Op::Proj(_, v) | Op::Get(v) | Op::Strip(v) => self.add_value(v),
            Op::Put(rho, v) => {
                self.add_rgn(rho);
                self.add_value(v);
            }
            Op::Prim(_, a, b) => {
                self.add_value(a);
                self.add_value(b);
            }
        }
    }

    fn leak(self) -> &'static NodeFv {
        Box::leak(Box::new(NodeFv {
            tvars: sorted(self.tvars).into_boxed_slice(),
            rvars: sorted(self.rvars).into_boxed_slice(),
            avars: sorted(self.avars).into_boxed_slice(),
            xvars: sorted(self.xvars).into_boxed_slice(),
        }))
    }
}

/// The honest fingerprint of a code block: body and parameter types through
/// the block's own tag/region/parameter binders.
fn add_code_def(acc: &mut FvAcc, def: &CodeDef) {
    let tbind: Vec<Symbol> = def.tvars.iter().map(|(t, _)| *t).collect();
    let rbind: Vec<Symbol> = def.rvars.clone();
    for (_, sigma) in &def.params {
        let fv = ty_fv(intern_ty(sigma.clone()));
        acc.tvars
            .extend(fv.tvars.iter().copied().filter(|t| !tbind.contains(t)));
        acc.rvars
            .extend(fv.rvars.iter().copied().filter(|r| !rbind.contains(r)));
        acc.avars.extend_from_slice(&fv.avars);
    }
    let xbind: Vec<Symbol> = def.params.iter().map(|(x, _)| *x).collect();
    let body = term_fv(intern_term(def.body.clone()));
    acc.add_node_minus(body, &tbind, &rbind, &[], &xbind);
}

/// The free variables of a value (all four namespaces), computed once per
/// node.
pub fn value_fv(id: ValId) -> &'static NodeFv {
    if let Some(fv) = memo_get(&VAL_FV, id.index()) {
        return fv;
    }
    let mut acc = FvAcc::default();
    match id.node() {
        Value::Int(_) | Value::Addr(..) => {}
        Value::Var(x) => acc.xvars.push(*x),
        Value::Pair(a, b) => {
            acc.add_node(value_fv(*a));
            acc.add_node(value_fv(*b));
        }
        Value::PackTag {
            tvar,
            tag,
            val,
            body_ty,
            ..
        } => {
            acc.add_tag(tag);
            acc.add_node(value_fv(*val));
            let mut body = FvAcc::default();
            body.add_ty(body_ty);
            acc.tvars
                .extend(body.tvars.into_iter().filter(|t| t != tvar));
            acc.rvars.extend(body.rvars);
            acc.avars.extend(body.avars);
        }
        Value::PackAlpha {
            avar,
            regions,
            witness,
            val,
            body_ty,
        } => {
            for r in regions.iter() {
                acc.add_rgn(r);
            }
            acc.add_ty(witness);
            acc.add_node(value_fv(*val));
            let mut body = FvAcc::default();
            body.add_ty(body_ty);
            acc.tvars.extend(body.tvars);
            acc.rvars.extend(body.rvars);
            acc.avars
                .extend(body.avars.into_iter().filter(|a| a != avar));
        }
        Value::PackRgn {
            rvar,
            bound,
            witness,
            val,
            body_ty,
        } => {
            for r in bound.iter() {
                acc.add_rgn(r);
            }
            acc.add_rgn(witness);
            acc.add_node(value_fv(*val));
            let mut body = FvAcc::default();
            body.add_ty(body_ty);
            acc.tvars.extend(body.tvars);
            acc.rvars
                .extend(body.rvars.into_iter().filter(|r| r != rvar));
            acc.avars.extend(body.avars);
        }
        Value::TagApp(f, tags, regions) => {
            acc.add_node(value_fv(*f));
            for t in tags.iter() {
                acc.add_tag(t);
            }
            for r in regions.iter() {
                acc.add_rgn(r);
            }
        }
        Value::Code(def) => add_code_def(&mut acc, def),
        Value::Inl(v) | Value::Inr(v) => acc.add_node(value_fv(*v)),
    }
    let leaked = acc.leak();
    memo_put(&VAL_FV, id.index(), leaked);
    leaked
}

/// The free variables of a term (all four namespaces), computed once per
/// node. `Let` spines are walked iteratively (they can be thousands of
/// bindings deep), memoizing every suffix on the way back out.
pub fn term_fv(id: TermId) -> &'static NodeFv {
    if let Some(fv) = memo_get(&TERM_FV, id.index()) {
        return fv;
    }
    // Collect the unmemoized prefix of the Let spine, innermost last.
    let mut spine: Vec<TermId> = Vec::new();
    let mut cur = id;
    while let Term::Let { body, .. } = cur.node() {
        spine.push(cur);
        if memo_get(&TERM_FV, body.index()).is_some() {
            break;
        }
        cur = *body;
    }
    // Innermost first: each node's body is then a memo hit for the next.
    // When `id` is a `Let` it is the spine's first element, so the loop
    // covers it; otherwise the spine is empty and it is computed below.
    for node in spine.into_iter().rev() {
        let fv = term_fv_node(node);
        memo_put(&TERM_FV, node.index(), fv);
    }
    if let Some(fv) = memo_get(&TERM_FV, id.index()) {
        return fv;
    }
    let leaked = term_fv_node(id);
    memo_put(&TERM_FV, id.index(), leaked);
    leaked
}

/// Computes one node's fingerprint, assuming `Let` bodies are either
/// memoized or reachable without re-walking a long spine (guaranteed by
/// [`term_fv`]'s spine loop).
fn term_fv_node(id: TermId) -> &'static NodeFv {
    let mut acc = FvAcc::default();
    match id.node() {
        Term::App {
            f,
            tags,
            regions,
            args,
        } => {
            acc.add_value(f);
            for t in tags {
                acc.add_tag(t);
            }
            for r in regions {
                acc.add_rgn(r);
            }
            for v in args {
                acc.add_value(v);
            }
        }
        Term::Let { x, op, body } => {
            acc.add_op(op);
            acc.add_node_minus(term_fv(*body), &[], &[], &[], &[*x]);
        }
        Term::Halt(v) => acc.add_value(v),
        Term::IfGc { rho, full, cont } => {
            acc.add_rgn(rho);
            acc.add_node(term_fv(*full));
            acc.add_node(term_fv(*cont));
        }
        Term::OpenTag { pkg, tvar, x, body } => {
            acc.add_value(pkg);
            acc.add_node_minus(term_fv(*body), &[*tvar], &[], &[], &[*x]);
        }
        Term::OpenAlpha { pkg, avar, x, body } => {
            acc.add_value(pkg);
            acc.add_node_minus(term_fv(*body), &[], &[], &[*avar], &[*x]);
        }
        Term::OpenRgn { pkg, rvar, x, body } => {
            acc.add_value(pkg);
            acc.add_node_minus(term_fv(*body), &[], &[*rvar], &[], &[*x]);
        }
        Term::LetRegion { rvar, body } => {
            acc.add_node_minus(term_fv(*body), &[], &[*rvar], &[], &[]);
        }
        Term::Only { regions, body } => {
            for r in regions {
                acc.add_rgn(r);
            }
            acc.add_node(term_fv(*body));
        }
        Term::Typecase {
            tag,
            int_arm,
            arrow_arm,
            prod_arm,
            exist_arm,
        } => {
            acc.add_tag(tag);
            acc.add_node(term_fv(*int_arm));
            acc.add_node(term_fv(*arrow_arm));
            let (t1, t2, pe) = prod_arm;
            acc.add_node_minus(term_fv(*pe), &[*t1, *t2], &[], &[], &[]);
            let (te, ee) = exist_arm;
            acc.add_node_minus(term_fv(*ee), &[*te], &[], &[], &[]);
        }
        Term::IfLeft {
            x,
            scrut,
            left,
            right,
        } => {
            acc.add_value(scrut);
            acc.add_node_minus(term_fv(*left), &[], &[], &[], &[*x]);
            acc.add_node_minus(term_fv(*right), &[], &[], &[], &[*x]);
        }
        Term::Set { dst, src, body } => {
            acc.add_value(dst);
            acc.add_value(src);
            acc.add_node(term_fv(*body));
        }
        Term::Widen {
            x,
            from,
            to,
            tag,
            v,
            body,
        } => {
            acc.add_rgn(from);
            acc.add_rgn(to);
            acc.add_tag(tag);
            acc.add_value(v);
            acc.add_node_minus(term_fv(*body), &[], &[], &[], &[*x]);
        }
        Term::IfReg { r1, r2, eq, ne } => {
            acc.add_rgn(r1);
            acc.add_rgn(r2);
            acc.add_node(term_fv(*eq));
            acc.add_node(term_fv(*ne));
        }
        Term::If0 {
            scrut,
            zero,
            nonzero,
        } => {
            acc.add_value(scrut);
            acc.add_node(term_fv(*zero));
            acc.add_node(term_fv(*nonzero));
        }
    }
    acc.leak()
}

// ----- fingerprint-skip counters ------------------------------------------

static TERM_SKIPS: AtomicU64 = AtomicU64::new(0);
static VAL_SKIPS: AtomicU64 = AtomicU64::new(0);

/// Records that a term-level substitution was skipped whole by fingerprint.
pub(crate) fn note_term_skip() {
    TERM_SKIPS.fetch_add(1, Ordering::Relaxed);
}

/// Records that a value-level substitution was skipped whole by fingerprint.
pub(crate) fn note_val_skip() {
    VAL_SKIPS.fetch_add(1, Ordering::Relaxed);
}

// ----- α-canonicalization -------------------------------------------------

static DB_TAG: RwLock<Vec<Symbol>> = RwLock::new(Vec::new());
static DB_RGN: RwLock<Vec<Symbol>> = RwLock::new(Vec::new());
static DB_ALPHA: RwLock<Vec<Symbol>> = RwLock::new(Vec::new());

fn db_symbol(cache: &RwLock<Vec<Symbol>>, prefix: &str, i: usize) -> Symbol {
    {
        let v = read_lock(cache);
        if i < v.len() {
            return v[i];
        }
    }
    let mut v = write_lock(cache);
    while v.len() <= i {
        let s = Symbol::intern(&format!("{prefix}{}", v.len()));
        v.push(s);
    }
    v[i]
}

fn binder_sym(cell: &OnceLock<Symbol>, name: &str) -> Symbol {
    *cell.get_or_init(|| Symbol::intern(name))
}

static TAG_BINDER: OnceLock<Symbol> = OnceLock::new();
static RGN_BINDER: OnceLock<Symbol> = OnceLock::new();
static ALPHA_BINDER: OnceLock<Symbol> = OnceLock::new();

/// Is any free variable of (sorted) `fv` bound in `env`?
fn hits_env(fv: &[Symbol], env: &[Symbol]) -> bool {
    env.iter().any(|b| fv.binary_search(b).is_ok())
}

/// De Bruijn index of `x` in `env` (distance to the innermost binder), if
/// bound.
fn db_index(x: Symbol, env: &[Symbol]) -> Option<usize> {
    env.iter().rev().position(|&b| b == x)
}

/// The α-canonical form of a tag: binders renamed to `!`, bound variables
/// to their de Bruijn index `!i`. Two tags are α-equivalent iff their
/// canonical ids are equal.
pub fn canon_tag(id: TagId) -> TagId {
    if let Some(c) = memo_get(&TAG_CANON, id.index()) {
        return c;
    }
    let c = canon_tag_rec(id, &mut Vec::new());
    memo_put(&TAG_CANON, id.index(), c);
    c
}

fn canon_tag_rec(id: TagId, env: &mut Vec<Symbol>) -> TagId {
    // A subterm whose free variables miss every enclosing binder
    // canonicalizes exactly as it would at top level — reuse the memo.
    if !env.is_empty() && !hits_env(tag_fv(id), env) {
        return canon_tag(id);
    }
    match id.node() {
        Tag::Int => id,
        Tag::Var(t) => match db_index(*t, env) {
            Some(i) => intern_tag(Tag::Var(db_symbol(&DB_TAG, "!", i))),
            None => id,
        },
        Tag::AnyArrow(t) => match db_index(*t, env) {
            Some(i) => intern_tag(Tag::AnyArrow(db_symbol(&DB_TAG, "!", i))),
            None => id,
        },
        Tag::Prod(a, b) => intern_tag(Tag::Prod(canon_tag_rec(*a, env), canon_tag_rec(*b, env))),
        Tag::App(f, a) => intern_tag(Tag::App(canon_tag_rec(*f, env), canon_tag_rec(*a, env))),
        Tag::Arrow(args) => intern_tag(Tag::Arrow(
            args.iter().map(|a| canon_tag_rec(*a, env)).collect(),
        )),
        Tag::Exist(t, body) => {
            env.push(*t);
            let b = canon_tag_rec(*body, env);
            env.pop();
            intern_tag(Tag::Exist(binder_sym(&TAG_BINDER, "!"), b))
        }
        Tag::Lam(t, body) => {
            env.push(*t);
            let b = canon_tag_rec(*body, env);
            env.pop();
            intern_tag(Tag::Lam(binder_sym(&TAG_BINDER, "!"), b))
        }
    }
}

#[derive(Default)]
struct CanonEnv {
    tags: Vec<Symbol>,
    rgns: Vec<Symbol>,
    alphas: Vec<Symbol>,
}

impl CanonEnv {
    fn is_empty(&self) -> bool {
        self.tags.is_empty() && self.rgns.is_empty() && self.alphas.is_empty()
    }
}

fn canon_region(rho: &Region, env: &CanonEnv) -> Region {
    match rho {
        Region::Var(r) => match db_index(*r, &env.rgns) {
            Some(i) => Region::Var(db_symbol(&DB_RGN, "!r", i)),
            None => *rho,
        },
        Region::Name(_) => *rho,
    }
}

/// Canonical form of a region *set* (`∆`): rename, then sort and
/// deduplicate — the paper's `∆`s are sets, so order is not significant.
fn canon_region_set(rs: &[Region], env: &CanonEnv) -> Vec<Region> {
    let mut out: Vec<Region> = rs.iter().map(|r| canon_region(r, env)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The α-canonical form of a type, with per-namespace de Bruijn naming
/// (`!i` for tags, `!ri` for regions, `!ai` for αs). Two types are
/// α-equivalent iff their canonical ids are equal.
pub fn canon_ty(id: TyId) -> TyId {
    if let Some(c) = memo_get(&TY_CANON, id.index()) {
        return c;
    }
    let c = canon_ty_rec(id, &mut CanonEnv::default());
    memo_put(&TY_CANON, id.index(), c);
    c
}

fn canon_ty_rec(id: TyId, env: &mut CanonEnv) -> TyId {
    if !env.is_empty() {
        let fv = ty_fv(id);
        if !hits_env(&fv.tvars, &env.tags)
            && !hits_env(&fv.rvars, &env.rgns)
            && !hits_env(&fv.avars, &env.alphas)
        {
            return canon_ty(id);
        }
    }
    match id.node() {
        Ty::Int => id,
        Ty::Alpha(a) => match db_index(*a, &env.alphas) {
            Some(i) => intern_ty(Ty::Alpha(db_symbol(&DB_ALPHA, "!a", i))),
            None => id,
        },
        Ty::Prod(a, b) => intern_ty(Ty::Prod(canon_ty_rec(*a, env), canon_ty_rec(*b, env))),
        Ty::Sum(a, b) => intern_ty(Ty::Sum(canon_ty_rec(*a, env), canon_ty_rec(*b, env))),
        Ty::Left(a) => intern_ty(Ty::Left(canon_ty_rec(*a, env))),
        Ty::Right(a) => intern_ty(Ty::Right(canon_ty_rec(*a, env))),
        Ty::At(inner, rho) => {
            let rho = canon_region(rho, env);
            intern_ty(Ty::At(canon_ty_rec(*inner, env), rho))
        }
        Ty::M(rho, tag) => intern_ty(Ty::M(
            canon_region(rho, env),
            canon_tag_rec(*tag, &mut env.tags),
        )),
        Ty::C(from, to, tag) => intern_ty(Ty::C(
            canon_region(from, env),
            canon_region(to, env),
            canon_tag_rec(*tag, &mut env.tags),
        )),
        Ty::MGen(young, old, tag) => intern_ty(Ty::MGen(
            canon_region(young, env),
            canon_region(old, env),
            canon_tag_rec(*tag, &mut env.tags),
        )),
        Ty::Code { tvars, rvars, args } => {
            let nt = tvars.len();
            let nr = rvars.len();
            env.tags.extend(tvars.iter().map(|(t, _)| *t));
            env.rgns.extend(rvars.iter().copied());
            let args = args.iter().map(|a| canon_ty_rec(*a, env)).collect();
            env.tags.truncate(env.tags.len() - nt);
            env.rgns.truncate(env.rgns.len() - nr);
            intern_ty(Ty::Code {
                tvars: tvars
                    .iter()
                    .map(|(_, k)| (binder_sym(&TAG_BINDER, "!"), *k))
                    .collect(),
                rvars: rvars
                    .iter()
                    .map(|_| binder_sym(&RGN_BINDER, "!r"))
                    .collect(),
                args,
            })
        }
        Ty::ExistTag { tvar, kind, body } => {
            env.tags.push(*tvar);
            let body = canon_ty_rec(*body, env);
            env.tags.pop();
            intern_ty(Ty::ExistTag {
                tvar: binder_sym(&TAG_BINDER, "!"),
                kind: *kind,
                body,
            })
        }
        Ty::ExistAlpha {
            avar,
            regions,
            body,
        } => {
            let regions = canon_region_set(regions, env).into();
            env.alphas.push(*avar);
            let body = canon_ty_rec(*body, env);
            env.alphas.pop();
            intern_ty(Ty::ExistAlpha {
                avar: binder_sym(&ALPHA_BINDER, "!a"),
                regions,
                body,
            })
        }
        Ty::ExistRgn { rvar, bound, body } => {
            let bound = canon_region_set(bound, env).into();
            env.rgns.push(*rvar);
            let body = canon_ty_rec(*body, env);
            env.rgns.pop();
            intern_ty(Ty::ExistRgn {
                rvar: binder_sym(&RGN_BINDER, "!r"),
                bound,
                body,
            })
        }
        Ty::Trans {
            tags,
            regions,
            args,
            rho,
        } => intern_ty(Ty::Trans {
            tags: tags
                .iter()
                .map(|t| canon_tag_rec(*t, &mut env.tags))
                .collect(),
            regions: regions.iter().map(|r| canon_region(r, env)).collect(),
            args: args.iter().map(|a| canon_ty_rec(*a, env)).collect(),
            rho: canon_region(rho, env),
        }),
    }
}

/// α-equivalence of tags as an id compare (after canonicalization).
pub fn tag_alpha_eq(a: TagId, b: TagId) -> bool {
    a == b || canon_tag(a) == canon_tag(b)
}

/// α-equivalence of types as an id compare (after canonicalization).
pub fn ty_alpha_eq(a: TyId, b: TyId) -> bool {
    a == b || canon_ty(a) == canon_ty(b)
}

// ----- telemetry ----------------------------------------------------------

/// Occupancy of the interning subsystem: arena sizes, hit counts, and memo
/// table sizes. Printed by `psgc --stats-intern`.
#[derive(Clone, Copy, Debug, Default)]
pub struct InternStats {
    /// Distinct tag nodes interned.
    pub tag_nodes: usize,
    /// Intern calls that found an existing tag node.
    pub tag_hits: u64,
    /// Distinct type nodes interned.
    pub ty_nodes: usize,
    /// Intern calls that found an existing type node.
    pub ty_hits: u64,
    /// Entries in the tag-normalization memo.
    pub tag_norm: usize,
    /// Entries in the (type, dialect) normalization memo.
    pub ty_norm: usize,
    /// Entries in the tag α-canonicalization memo.
    pub tag_canon: usize,
    /// Entries in the type α-canonicalization memo.
    pub ty_canon: usize,
    /// Tag free-variable fingerprints computed.
    pub tag_fv: usize,
    /// Type free-variable fingerprints computed.
    pub ty_fv: usize,
    /// Distinct term nodes interned.
    pub term_nodes: usize,
    /// Intern calls that found an existing term node.
    pub term_hits: u64,
    /// Distinct value nodes interned.
    pub val_nodes: usize,
    /// Intern calls that found an existing value node.
    pub val_hits: u64,
    /// Term free-variable fingerprints computed.
    pub term_fv: usize,
    /// Value free-variable fingerprints computed.
    pub val_fv: usize,
    /// Term substitutions skipped whole by fingerprint.
    pub term_skips: u64,
    /// Value substitutions skipped whole by fingerprint.
    pub val_skips: u64,
}

/// A snapshot of the global interner and memo-table occupancy.
pub fn stats() -> InternStats {
    let (tag_nodes, tag_hits) = (TAGS.len(), TAGS.hits());
    let (ty_nodes, ty_hits) = (TYS.len(), TYS.hits());
    let (term_nodes, term_hits) = (TERMS.len(), TERMS.hits());
    let (val_nodes, val_hits) = (VALS.len(), VALS.hits());
    InternStats {
        tag_nodes,
        tag_hits,
        ty_nodes,
        ty_hits,
        tag_norm: memo_len(&TAG_NORM),
        ty_norm: TY_NORM.iter().map(memo_len).sum(),
        tag_canon: memo_len(&TAG_CANON),
        ty_canon: memo_len(&TY_CANON),
        tag_fv: memo_len(&TAG_FV),
        ty_fv: memo_len(&TY_FV),
        term_nodes,
        term_hits,
        val_nodes,
        val_hits,
        term_fv: memo_len(&TERM_FV),
        val_fv: memo_len(&VAL_FV),
        term_skips: TERM_SKIPS.load(Ordering::Relaxed),
        val_skips: VAL_SKIPS.load(Ordering::Relaxed),
    }
}

impl fmt::Display for InternStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tag nodes      {:>10}  (hits {})",
            self.tag_nodes, self.tag_hits
        )?;
        writeln!(
            f,
            "ty nodes       {:>10}  (hits {})",
            self.ty_nodes, self.ty_hits
        )?;
        writeln!(
            f,
            "term nodes     {:>10}  (hits {})",
            self.term_nodes, self.term_hits
        )?;
        writeln!(
            f,
            "val nodes      {:>10}  (hits {})",
            self.val_nodes, self.val_hits
        )?;
        writeln!(f, "tag norm memo  {:>10}", self.tag_norm)?;
        writeln!(f, "ty norm memo   {:>10}", self.ty_norm)?;
        writeln!(f, "tag canon memo {:>10}", self.tag_canon)?;
        writeln!(f, "ty canon memo  {:>10}", self.ty_canon)?;
        writeln!(f, "tag fv memo    {:>10}", self.tag_fv)?;
        writeln!(f, "ty fv memo     {:>10}", self.ty_fv)?;
        writeln!(f, "term fv memo   {:>10}", self.term_fv)?;
        writeln!(f, "val fv memo    {:>10}", self.val_fv)?;
        writeln!(f, "term skips     {:>10}", self.term_skips)?;
        write!(f, "val skips      {:>10}", self.val_skips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Kind;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn structural_equality_is_id_equality() {
        let a = Tag::prod(Tag::Int, Tag::arrow([Tag::Int]));
        let b = Tag::prod(Tag::Int, Tag::arrow([Tag::Int]));
        assert_eq!(a.id(), b.id());
        let c = Tag::prod(Tag::Int, Tag::Int);
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn canon_renames_binders() {
        let a = Tag::lam(s("u"), Tag::Var(s("u"))).id();
        let b = Tag::lam(s("v"), Tag::Var(s("v"))).id();
        assert_eq!(canon_tag(a), canon_tag(b));
        assert!(tag_alpha_eq(a, b));
    }

    #[test]
    fn canon_keeps_free_vars() {
        let a = Tag::lam(s("u"), Tag::Var(s("w"))).id();
        let b = Tag::lam(s("v"), Tag::Var(s("z"))).id();
        assert!(!tag_alpha_eq(a, b));
    }

    #[test]
    fn canon_distinguishes_depths() {
        // ∃u.∃v.(u × v) vs ∃u.∃v.(v × u): different index patterns.
        let a = Tag::exist(
            s("u"),
            Tag::exist(s("v"), Tag::prod(Tag::Var(s("u")), Tag::Var(s("v")))),
        );
        let b = Tag::exist(
            s("u"),
            Tag::exist(s("v"), Tag::prod(Tag::Var(s("v")), Tag::Var(s("u")))),
        );
        assert!(!tag_alpha_eq(a.id(), b.id()));
    }

    #[test]
    fn ty_canon_region_sets_are_sets() {
        let r1 = Region::Var(s("ra"));
        let r2 = Region::Var(s("rb"));
        let a = Ty::exist_rgn(s("r"), [r1, r2], Ty::Int).id();
        let b = Ty::exist_rgn(s("rr"), [r2, r1, r2], Ty::Int).id();
        assert!(ty_alpha_eq(a, b));
    }

    #[test]
    fn ty_canon_code_binders_positional() {
        let a = Ty::code(
            [(s("t"), Kind::Omega)],
            [s("r")],
            [Ty::m(Region::Var(s("r")), Tag::Var(s("t")))],
        )
        .id();
        let b = Ty::code(
            [(s("u"), Kind::Omega)],
            [s("q")],
            [Ty::m(Region::Var(s("q")), Tag::Var(s("u")))],
        )
        .id();
        assert!(ty_alpha_eq(a, b));
        let c = Ty::code(
            [(s("u"), Kind::Arrow)],
            [s("q")],
            [Ty::m(Region::Var(s("q")), Tag::Var(s("u")))],
        )
        .id();
        assert!(!ty_alpha_eq(a, c));
    }

    #[test]
    fn fv_fingerprints() {
        let t = Tag::exist(s("u"), Tag::prod(Tag::Var(s("u")), Tag::Var(s("w"))));
        let fv = tag_fv(t.id());
        assert!(fv.contains(&s("w")));
        assert!(!fv.contains(&s("u")));
        let sigma = Ty::exist_rgn(
            s("r"),
            [Region::Var(s("rb"))],
            Ty::m(Region::Var(s("r")), Tag::Var(s("t"))),
        );
        let fv = ty_fv(sigma.id());
        assert_eq!(&*fv.rvars, &[s("rb")]);
        assert_eq!(&*fv.tvars, &[s("t")]);
        assert!(fv.avars.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let _ = Tag::prod(Tag::Int, Tag::Int).id();
        let st = stats();
        assert!(st.tag_nodes > 0);
    }
}
