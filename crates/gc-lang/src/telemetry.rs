//! Structured GC telemetry: an event stream emitted by both interpreter
//! backends, for all collectors.
//!
//! The paper certifies the collector *inside* the language, but the
//! machine statistics ([`crate::machine::Stats`]) are a flat struct
//! sampled once at the end of a run: there is no way to see *when* a
//! scavenge fired, what each `gc` call copied, or how the heap evolved.
//! This module adds that visibility without touching the semantics:
//!
//! * [`GcEvent`] — the event vocabulary: region allocation/reclamation,
//!   collection begin/end (with from/to-space sizes, copy and promotion
//!   work, and heap-occupancy snapshots), per-object copies during a
//!   collection, periodic heap samples, fuel exhaustion, and halt.
//! * [`Observer`] — the consumer interface. Every hook has a no-op
//!   default, and a machine with no observer attached pays only an
//!   `Option` check per hook site (the "disabled" path measured by E10).
//! * [`Telemetry`] — the emitter state shared by both backends. The
//!   substitution machine and the environment machine call the same hooks
//!   at the same rule applications on the same shared [`Memory`], so the
//!   two backends produce *identical* event sequences (checked by the
//!   differential suites).
//! * [`Recorder`] — an [`Observer`] that aggregates [`Metrics`]
//!   (counters and copy-size histograms) and optionally keeps the raw
//!   event log, with JSON-lines ([`Recorder::write_jsonl`]) and
//!   human-readable ([`Metrics`]' `Display`) exporters.
//! * [`validate_jsonl_trace`] — the canonical schema check for exported
//!   traces; the trace format is a stability contract, and this function
//!   (used by the test suite) is its single definition.
//!
//! # How machine rules map to events
//!
//! A collection, at machine level, is: the mutator's `ifgc ρ` comes back
//! "full" (→ [`GcEvent::GcBegin`]), control jumps to the collector's `gc`
//! entry, the collector allocates its to-space and continuation regions
//! with `let region` (→ [`GcEvent::RegionAlloc`]), copies live data with
//! `put` (→ [`GcEvent::Copy`]), and finally executes `only ∆`, dropping
//! the from-space (→ [`GcEvent::RegionFree`] per dropped region, then
//! [`GcEvent::GcEnd`]). A copy into a region that already existed when
//! the collection began is a *promotion* — exactly the generational
//! collector's minor copies into the old region (`Copy { promoted: true }`).
//! An `ifgc` firing while a collection is already active (the generational
//! collector's fall-through from minor to major collection) does not open
//! a nested collection; its copy work is accounted to the ongoing one.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::memory::{Memory, PageAlloc, ReclaimReport};
use crate::syntax::RegionName;

/// One data region's occupancy at a snapshot point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionSnapshot {
    /// The region's name.
    pub region: RegionName,
    /// Words currently allocated in it.
    pub words: usize,
    /// Its word budget.
    pub budget: usize,
    /// Pages the region currently holds.
    pub pages: usize,
}

/// Captures the occupancy of every data region (the code region `cd` is
/// excluded: it is immutable after load and has no budget).
fn occupancy(mem: &Memory) -> Vec<RegionSnapshot> {
    mem.region_names()
        .filter(|nu| !nu.is_cd())
        .filter_map(|nu| {
            mem.region(nu).map(|r| RegionSnapshot {
                region: nu,
                words: r.words(),
                budget: r.budget(),
                pages: r.page_count(),
            })
        })
        .collect()
}

/// A telemetry event. All `step` fields are the machine's step counter at
/// emission time, so events from the two backends can be compared (and
/// merged with [`crate::machine::Stats::steps`]) directly.
#[derive(Clone, Debug, PartialEq)]
pub enum GcEvent {
    /// `let region` allocated a fresh region.
    RegionAlloc {
        step: u64,
        region: RegionName,
        /// The budget the growth policy assigned it.
        budget: usize,
        /// Total data-region words after the allocation.
        heap_words: usize,
    },
    /// `only ∆` dropped a region (one event per dropped region).
    RegionFree {
        step: u64,
        region: RegionName,
        /// Words that were allocated in it.
        words: usize,
        /// Objects that were allocated in it.
        objects: usize,
    },
    /// A `put` did not fit on any of the destination region's open pages,
    /// so the store gave the region a fresh page.
    PageAlloc {
        step: u64,
        /// The page's owning region.
        region: RegionName,
        /// The page's store-wide id.
        page: u32,
        /// Its size class in words (0 for a dedicated large-object page).
        class: usize,
        /// Its footprint against the heap cap, in words.
        words: usize,
    },
    /// `only ∆` returned a page to the store's free list (one event per
    /// freed page, emitted just before its owner's [`GcEvent::RegionFree`]).
    PageFree {
        step: u64,
        /// The region that owned the page.
        region: RegionName,
        /// The page's store-wide id.
        page: u32,
        /// The footprint it gave back, in words.
        words: usize,
    },
    /// An `ifgc` came back "full" outside an active collection: a
    /// collection is beginning.
    GcBegin {
        step: u64,
        /// Index of this collection (0-based).
        collection: u64,
        /// The region whose fullness triggered the collection (from-space).
        region: RegionName,
        /// Words in the triggering region.
        region_words: usize,
        /// Total data-region words.
        heap_words: usize,
        /// Occupancy of every data region at the trigger point.
        occupancy: Vec<RegionSnapshot>,
    },
    /// A `put` performed while a collection is active: the collector
    /// copied one object.
    Copy {
        step: u64,
        /// Destination region.
        region: RegionName,
        /// Size of the copied object in words.
        words: usize,
        /// True if the destination existed before the collection began —
        /// a promotion (the generational collector's minor copies into
        /// the old generation).
        promoted: bool,
    },
    /// The collection's `only` executed: the collection is over.
    GcEnd {
        step: u64,
        /// Index of this collection (matches its [`GcEvent::GcBegin`]).
        collection: u64,
        /// Machine steps the collection took (trigger to `only`).
        gc_steps: u64,
        /// Total words `put` while the collection was active.
        words_copied: u64,
        /// Number of `put`s while the collection was active.
        objects_copied: u64,
        /// Words copied into pre-existing regions (promotions).
        words_promoted: u64,
        /// Number of promoting copies.
        objects_promoted: u64,
        /// Words reclaimed by the `only`.
        words_reclaimed: u64,
        /// Live words kept by the `only` (data regions).
        kept_words: u64,
        /// Words now in the regions created during the collection
        /// (to-space and the collector's auxiliary regions).
        to_space_words: usize,
        /// Total data-region words after the `only`.
        heap_words: usize,
        /// Occupancy of every surviving data region.
        occupancy: Vec<RegionSnapshot>,
    },
    /// A periodic heap sample (every `step_interval` machine steps).
    Step {
        step: u64,
        /// Total data-region words.
        heap_words: usize,
        /// Number of live data regions.
        regions: usize,
        /// Number of live pages across all data regions.
        heap_pages: usize,
    },
    /// The machine ran out of fuel.
    FuelExhausted { step: u64 },
    /// The periodic heap audit found a violated invariant; the run stops
    /// here (a `Halt`-class final event, like [`GcEvent::FuelExhausted`]).
    InvariantViolation {
        step: u64,
        /// The auditor's description of the first violated invariant.
        detail: String,
    },
    /// A `put` would have pushed the store past its configured
    /// `max_heap_words` cap; the run stops here.
    OutOfMemory {
        step: u64,
        /// Live data-region words at the failed allocation.
        heap_words: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The machine halted with the given integer.
    Halt { step: u64, value: i64 },
}

impl GcEvent {
    /// The event's name as it appears in the JSON-lines `"event"` field.
    pub fn name(&self) -> &'static str {
        match self {
            GcEvent::RegionAlloc { .. } => "region_alloc",
            GcEvent::RegionFree { .. } => "region_free",
            GcEvent::PageAlloc { .. } => "page_alloc",
            GcEvent::PageFree { .. } => "page_free",
            GcEvent::GcBegin { .. } => "gc_begin",
            GcEvent::Copy { .. } => "copy",
            GcEvent::GcEnd { .. } => "gc_end",
            GcEvent::Step { .. } => "step",
            GcEvent::FuelExhausted { .. } => "fuel_exhausted",
            GcEvent::InvariantViolation { .. } => "invariant_violation",
            GcEvent::OutOfMemory { .. } => "oom",
            GcEvent::Halt { .. } => "halt",
        }
    }

    /// The machine step at which the event was emitted.
    pub fn step(&self) -> u64 {
        match self {
            GcEvent::RegionAlloc { step, .. }
            | GcEvent::RegionFree { step, .. }
            | GcEvent::PageAlloc { step, .. }
            | GcEvent::PageFree { step, .. }
            | GcEvent::GcBegin { step, .. }
            | GcEvent::Copy { step, .. }
            | GcEvent::GcEnd { step, .. }
            | GcEvent::Step { step, .. }
            | GcEvent::FuelExhausted { step }
            | GcEvent::InvariantViolation { step, .. }
            | GcEvent::OutOfMemory { step, .. }
            | GcEvent::Halt { step, .. } => *step,
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("event", self.name());
        o.int("step", self.step());
        match self {
            GcEvent::RegionAlloc {
                region,
                budget,
                heap_words,
                ..
            } => {
                o.int("region", u64::from(region.0));
                o.int("budget", *budget as u64);
                o.int("heap_words", *heap_words as u64);
            }
            GcEvent::RegionFree {
                region,
                words,
                objects,
                ..
            } => {
                o.int("region", u64::from(region.0));
                o.int("words", *words as u64);
                o.int("objects", *objects as u64);
            }
            GcEvent::PageAlloc {
                region,
                page,
                class,
                words,
                ..
            } => {
                o.int("region", u64::from(region.0));
                o.int("page", u64::from(*page));
                o.int("class", *class as u64);
                o.int("words", *words as u64);
            }
            GcEvent::PageFree {
                region,
                page,
                words,
                ..
            } => {
                o.int("region", u64::from(region.0));
                o.int("page", u64::from(*page));
                o.int("words", *words as u64);
            }
            GcEvent::GcBegin {
                collection,
                region,
                region_words,
                heap_words,
                occupancy,
                ..
            } => {
                o.int("collection", *collection);
                o.int("region", u64::from(region.0));
                o.int("region_words", *region_words as u64);
                o.int("heap_words", *heap_words as u64);
                o.occupancy(occupancy);
            }
            GcEvent::Copy {
                region,
                words,
                promoted,
                ..
            } => {
                o.int("region", u64::from(region.0));
                o.int("words", *words as u64);
                o.bool("promoted", *promoted);
            }
            GcEvent::GcEnd {
                collection,
                gc_steps,
                words_copied,
                objects_copied,
                words_promoted,
                objects_promoted,
                words_reclaimed,
                kept_words,
                to_space_words,
                heap_words,
                occupancy,
                ..
            } => {
                o.int("collection", *collection);
                o.int("gc_steps", *gc_steps);
                o.int("words_copied", *words_copied);
                o.int("objects_copied", *objects_copied);
                o.int("words_promoted", *words_promoted);
                o.int("objects_promoted", *objects_promoted);
                o.int("words_reclaimed", *words_reclaimed);
                o.int("kept_words", *kept_words);
                o.int("to_space_words", *to_space_words as u64);
                o.int("heap_words", *heap_words as u64);
                o.occupancy(occupancy);
            }
            GcEvent::Step {
                heap_words,
                regions,
                heap_pages,
                ..
            } => {
                o.int("heap_words", *heap_words as u64);
                o.int("regions", *regions as u64);
                o.int("heap_pages", *heap_pages as u64);
            }
            GcEvent::FuelExhausted { .. } => {}
            GcEvent::InvariantViolation { detail, .. } => {
                o.str("detail", detail);
            }
            GcEvent::OutOfMemory {
                heap_words, limit, ..
            } => {
                o.int("heap_words", *heap_words as u64);
                o.int("limit", *limit as u64);
            }
            GcEvent::Halt { value, .. } => {
                o.signed("value", *value);
            }
        }
        o.finish()
    }
}

/// A consumer of [`GcEvent`]s.
///
/// The single hook has a no-op default body, so an implementation may
/// observe selectively. `Debug` is required so machines carrying an
/// observer stay `Debug` themselves.
pub trait Observer: fmt::Debug {
    /// Called on every emitted event, in emission order.
    fn on_event(&mut self, _event: &GcEvent) {}
}

/// A shareable observer handle: the caller keeps a clone and reads the
/// results after the run; the machine holds the other.
pub type SharedObserver = Rc<RefCell<dyn Observer>>;

/// The [`Observer`] that ignores everything — the explicit form of the
/// default no-op behaviour (attaching it is equivalent to attaching
/// nothing, except the hook-site `Option` check no longer short-circuits).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// State of the collection currently in progress.
#[derive(Clone, Debug)]
struct GcPhase {
    collection: u64,
    begin_step: u64,
    /// Regions with `id < first_new_region` existed when the collection
    /// began; a copy into one of them is a promotion.
    first_new_region: u32,
    words_copied: u64,
    objects_copied: u64,
    words_promoted: u64,
    objects_promoted: u64,
}

/// The emitter: owned by each machine, called from the same rule sites in
/// both backends. With no observer attached every hook is a single
/// `Option` check (`None` short-circuit) — the "disabled path" whose cost
/// E10 bounds at < 2% of E9 throughput.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    observer: Option<SharedObserver>,
    step_interval: u64,
    collections: u64,
    phase: Option<GcPhase>,
}

impl Telemetry {
    /// Attaches an observer. `step_interval > 0` additionally emits a
    /// [`GcEvent::Step`] heap sample every `step_interval` machine steps.
    pub fn attach(&mut self, observer: SharedObserver, step_interval: u64) {
        self.observer = Some(observer);
        self.step_interval = step_interval;
    }

    /// Is an observer attached?
    pub fn is_enabled(&self) -> bool {
        self.observer.is_some()
    }

    fn emit(&self, event: GcEvent) {
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_event(&event);
        }
    }

    /// Hook: a machine step is being taken (`step` is the post-increment
    /// counter).
    #[inline]
    pub fn on_step(&mut self, step: u64, mem: &Memory) {
        if self.observer.is_none() || self.step_interval == 0 {
            return;
        }
        if step.is_multiple_of(self.step_interval) {
            let regions = mem.region_names().filter(|nu| !nu.is_cd()).count();
            self.emit(GcEvent::Step {
                step,
                heap_words: mem.data_words(),
                regions,
                heap_pages: mem.live_pages(),
            });
        }
    }

    /// Hook: `let region` allocated `region`.
    #[inline]
    pub fn on_region_alloc(&mut self, region: RegionName, mem: &Memory, step: u64) {
        if self.observer.is_none() {
            return;
        }
        let budget = mem.region(region).map_or(0, |r| r.budget());
        self.emit(GcEvent::RegionAlloc {
            step,
            region,
            budget,
            heap_words: mem.data_words(),
        });
    }

    /// Hook: `ifgc` came back "full" on `region`.
    #[inline]
    pub fn on_gc_trigger(&mut self, region: RegionName, mem: &Memory, step: u64) {
        if self.observer.is_none() {
            return;
        }
        if self.phase.is_some() {
            // The generational collector's minor→major fall-through: the
            // old region is full while the minor collection is dispatching.
            // The major collection's work is accounted to the open phase.
            return;
        }
        let collection = self.collections;
        self.collections += 1;
        self.phase = Some(GcPhase {
            collection,
            begin_step: step,
            first_new_region: mem.next_region_id(),
            words_copied: 0,
            objects_copied: 0,
            words_promoted: 0,
            objects_promoted: 0,
        });
        let region_words = mem.region(region).map_or(0, |r| r.words());
        self.emit(GcEvent::GcBegin {
            step,
            collection,
            region,
            region_words,
            heap_words: mem.data_words(),
            occupancy: occupancy(mem),
        });
    }

    /// Hook: a `put` overflowed the region's open pages and the store
    /// handed it a fresh page. Fires just before the `put`'s own
    /// [`Telemetry::on_put`], from the same rule site in every backend.
    #[inline]
    pub fn on_page_alloc(&mut self, region: RegionName, alloc: PageAlloc, step: u64) {
        if self.observer.is_none() {
            return;
        }
        self.emit(GcEvent::PageAlloc {
            step,
            region,
            page: alloc.page,
            class: alloc.class,
            words: alloc.footprint,
        });
    }

    /// Hook: a `put` stored `words` words into `region`.
    #[inline]
    pub fn on_put(&mut self, region: RegionName, words: usize, step: u64) {
        if self.observer.is_none() {
            return;
        }
        if let Some(phase) = &mut self.phase {
            let promoted = region.0 < phase.first_new_region;
            phase.words_copied += words as u64;
            phase.objects_copied += 1;
            if promoted {
                phase.words_promoted += words as u64;
                phase.objects_promoted += 1;
            }
            self.emit(GcEvent::Copy {
                step,
                region,
                words,
                promoted,
            });
        }
    }

    /// Hook: `only ∆` executed, producing `report`.
    #[inline]
    pub fn on_only(&mut self, report: &ReclaimReport, mem: &Memory, step: u64) {
        if self.observer.is_none() {
            return;
        }
        for (region, words, objects) in &report.dropped {
            for (owner, page, footprint) in &report.freed_pages {
                if owner == region {
                    self.emit(GcEvent::PageFree {
                        step,
                        region: *owner,
                        page: *page,
                        words: *footprint,
                    });
                }
            }
            self.emit(GcEvent::RegionFree {
                step,
                region: *region,
                words: *words,
                objects: *objects,
            });
        }
        // A collection ends at its `only` — which, coming from the
        // collector, always drops the (full, hence non-empty) from-space.
        if let Some(phase) = self.phase.take() {
            let to_space_words = mem
                .region_names()
                .filter(|nu| !nu.is_cd() && nu.0 >= phase.first_new_region)
                .map(|nu| mem.region(nu).map_or(0, |r| r.words()))
                .sum();
            self.emit(GcEvent::GcEnd {
                step,
                collection: phase.collection,
                gc_steps: step - phase.begin_step,
                words_copied: phase.words_copied,
                objects_copied: phase.objects_copied,
                words_promoted: phase.words_promoted,
                objects_promoted: phase.objects_promoted,
                words_reclaimed: report.words_reclaimed() as u64,
                kept_words: report.kept_words as u64,
                to_space_words,
                heap_words: mem.data_words(),
                occupancy: occupancy(mem),
            });
        }
    }

    /// Hook: the machine halted with `value`.
    #[inline]
    pub fn on_halt(&mut self, value: i64, step: u64) {
        if self.observer.is_none() {
            return;
        }
        self.emit(GcEvent::Halt { step, value });
    }

    /// Hook: the machine's fuel ran out.
    #[inline]
    pub fn on_fuel_exhausted(&mut self, step: u64) {
        if self.observer.is_none() {
            return;
        }
        self.emit(GcEvent::FuelExhausted { step });
    }

    /// Hook: the periodic audit found a violated heap invariant. Like fuel
    /// exhaustion this is a final event: the machine stops after emitting
    /// it, so attached recorders see a complete stream.
    #[inline]
    pub fn on_invariant_violation(&mut self, step: u64, detail: &str) {
        if self.observer.is_none() {
            return;
        }
        self.emit(GcEvent::InvariantViolation {
            step,
            detail: detail.to_string(),
        });
    }

    /// Hook: an allocation failed against the `max_heap_words` cap. Also a
    /// final event — the machine propagates the typed error after emitting.
    #[inline]
    pub fn on_oom(&mut self, step: u64, heap_words: usize, limit: usize) {
        if self.observer.is_none() {
            return;
        }
        self.emit(GcEvent::OutOfMemory {
            step,
            heap_words,
            limit,
        });
    }
}

// ---------------------------------------------------------------------------
// Recorder: metrics + optional event log + exporters
// ---------------------------------------------------------------------------

/// Run-level metadata for exported traces (the machine does not know which
/// collector image it is running; the pipeline or CLI fills this in).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Collector name (`basic`/`forwarding`/`generational`).
    pub collector: String,
    /// Interpreter backend name (`subst`/`env`).
    pub backend: String,
    /// Base region budget in words.
    pub budget: usize,
    /// Growth policy name (`fixed`/`adaptive`).
    pub growth: String,
    /// Fuel the run was given.
    pub fuel: u64,
    /// `Step`-sample interval (0 = no sampling).
    pub step_interval: u64,
}

impl RunMeta {
    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("event", "meta");
        o.str("collector", &self.collector);
        o.str("backend", &self.backend);
        o.int("budget", self.budget as u64);
        o.str("growth", &self.growth);
        o.int("fuel", self.fuel);
        o.int("step_interval", self.step_interval);
        o.finish()
    }
}

/// A power-of-two histogram: bucket *i* counts values whose bit length is
/// *i* (i.e. `2^(i-1) ≤ v < 2^i`; zero lands in bucket 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 33],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; 33] }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bits = 64 - value.leading_zeros();
        self.buckets[(bits as usize).min(32)] += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `(range_start, range_end_inclusive, count)` for each non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| match i {
                0 => (0, 0, c),
                _ => (1u64 << (i - 1), (1u64 << i) - 1, c),
            })
            .collect()
    }

    fn to_json(&self) -> String {
        let parts: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(|(lo, hi, c)| format!("[{lo},{hi},{c}]"))
            .collect();
        format!("[{}]", parts.join(","))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count() == 0 {
            return write!(f, "(empty)");
        }
        let rows = self.nonzero_buckets();
        let max = rows.iter().map(|&(_, _, c)| c).max().unwrap_or(1);
        for (lo, hi, c) in rows {
            let bar = "#".repeat(((c * 24).div_ceil(max)) as usize);
            if lo == hi {
                writeln!(f, "    {lo:>10}      {c:>8} {bar}")?;
            } else {
                writeln!(f, "    {lo:>10}-{hi:<10} {c:>8} {bar}")?;
            }
        }
        Ok(())
    }
}

/// Aggregate counters over an event stream, maintained incrementally by
/// [`Recorder`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Events seen (including `Copy` and `Step` samples).
    pub events: u64,
    /// Collections completed (`GcEnd` events).
    pub collections: u64,
    /// Regions allocated (`RegionAlloc` events).
    pub regions_allocated: u64,
    /// Regions reclaimed (`RegionFree` events).
    pub regions_freed: u64,
    /// Pages handed out by the store (`PageAlloc` events).
    pub pages_allocated: u64,
    /// Pages returned to the store's free list (`PageFree` events).
    pub pages_freed: u64,
    /// Total words copied during collections.
    pub words_copied: u64,
    /// Total objects copied during collections.
    pub objects_copied: u64,
    /// Total words promoted into pre-existing regions.
    pub words_promoted: u64,
    /// Total promoting copies.
    pub objects_promoted: u64,
    /// Total words reclaimed.
    pub words_reclaimed: u64,
    /// Total machine steps spent inside collections.
    pub gc_steps: u64,
    /// Largest observed total data-heap size, in words.
    pub max_heap_words: usize,
    /// Histogram of per-object copy sizes (words per `Copy`).
    pub copy_sizes: Histogram,
    /// Histogram of per-collection copy volumes (words per `GcEnd`).
    pub collection_sizes: Histogram,
}

impl Metrics {
    fn record(&mut self, event: &GcEvent) {
        self.events += 1;
        match event {
            GcEvent::RegionAlloc { heap_words, .. } => {
                self.regions_allocated += 1;
                self.max_heap_words = self.max_heap_words.max(*heap_words);
            }
            GcEvent::RegionFree { .. } => self.regions_freed += 1,
            GcEvent::PageAlloc { .. } => self.pages_allocated += 1,
            GcEvent::PageFree { .. } => self.pages_freed += 1,
            GcEvent::GcBegin { heap_words, .. } => {
                self.max_heap_words = self.max_heap_words.max(*heap_words);
            }
            GcEvent::Copy {
                words, promoted, ..
            } => {
                self.words_copied += *words as u64;
                self.objects_copied += 1;
                if *promoted {
                    self.words_promoted += *words as u64;
                    self.objects_promoted += 1;
                }
                self.copy_sizes.record(*words as u64);
            }
            GcEvent::GcEnd {
                gc_steps,
                words_copied,
                words_reclaimed,
                heap_words,
                ..
            } => {
                self.collections += 1;
                self.gc_steps += gc_steps;
                self.words_reclaimed += words_reclaimed;
                self.max_heap_words = self.max_heap_words.max(*heap_words);
                self.collection_sizes.record(*words_copied);
            }
            GcEvent::Step { heap_words, .. } => {
                self.max_heap_words = self.max_heap_words.max(*heap_words);
            }
            GcEvent::FuelExhausted { .. }
            | GcEvent::InvariantViolation { .. }
            | GcEvent::OutOfMemory { .. }
            | GcEvent::Halt { .. } => {}
        }
    }

    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("event", "summary");
        o.int("events", self.events);
        o.int("collections", self.collections);
        o.int("regions_allocated", self.regions_allocated);
        o.int("regions_freed", self.regions_freed);
        o.int("pages_allocated", self.pages_allocated);
        o.int("pages_freed", self.pages_freed);
        o.int("words_copied", self.words_copied);
        o.int("objects_copied", self.objects_copied);
        o.int("words_promoted", self.words_promoted);
        o.int("objects_promoted", self.objects_promoted);
        o.int("words_reclaimed", self.words_reclaimed);
        o.int("gc_steps", self.gc_steps);
        o.int("max_heap_words", self.max_heap_words as u64);
        o.raw("copy_sizes", &self.copy_sizes.to_json());
        o.raw("collection_sizes", &self.collection_sizes.to_json());
        o.finish()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "collections:       {}", self.collections)?;
        writeln!(f, "gc steps:          {}", self.gc_steps)?;
        writeln!(
            f,
            "regions:           {} allocated, {} reclaimed",
            self.regions_allocated, self.regions_freed
        )?;
        writeln!(
            f,
            "pages:             {} allocated, {} reclaimed",
            self.pages_allocated, self.pages_freed
        )?;
        writeln!(
            f,
            "copied:            {} objects ({} words)",
            self.objects_copied, self.words_copied
        )?;
        writeln!(
            f,
            "promoted:          {} objects ({} words)",
            self.objects_promoted, self.words_promoted
        )?;
        writeln!(f, "words reclaimed:   {}", self.words_reclaimed)?;
        writeln!(f, "max heap words:    {}", self.max_heap_words)?;
        writeln!(f, "copy sizes (words/object):")?;
        write!(f, "{}", self.copy_sizes)?;
        writeln!(f, "collection sizes (words/collection):")?;
        write!(f, "{}", self.collection_sizes)
    }
}

/// An [`Observer`] that aggregates [`Metrics`] and (optionally) keeps the
/// full event log for export.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    /// Run metadata for the trace header (set by the pipeline / CLI).
    pub meta: Option<RunMeta>,
    /// The recorded events (empty if built with [`Recorder::metrics_only`]).
    pub events: Vec<GcEvent>,
    /// The aggregate counters.
    pub metrics: Metrics,
    keep_events: bool,
}

impl Recorder {
    /// A recorder that keeps the full event log.
    pub fn new() -> Recorder {
        Recorder {
            keep_events: true,
            ..Recorder::default()
        }
    }

    /// A recorder that only maintains [`Metrics`] — constant space, for
    /// long runs where the raw log is not needed (`psgc --metrics`).
    pub fn metrics_only() -> Recorder {
        Recorder::default()
    }

    /// Attaches run metadata for the trace header.
    pub fn with_meta(mut self, meta: RunMeta) -> Recorder {
        self.meta = Some(meta);
        self
    }

    /// Wraps the recorder for sharing with a machine; keep a clone of the
    /// returned handle to read the results after the run.
    pub fn into_shared(self) -> Rc<RefCell<Recorder>> {
        Rc::new(RefCell::new(self))
    }

    /// Exports the trace as JSON lines: a `meta` header (if set), one line
    /// per event, and a closing `summary` line with the metrics.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        if let Some(meta) = &self.meta {
            writeln!(w, "{}", meta.to_json())?;
        }
        for ev in &self.events {
            writeln!(w, "{}", ev.to_json())?;
        }
        writeln!(w, "{}", self.metrics.to_json())
    }

    /// The trace as a JSON-lines string.
    pub fn to_jsonl(&self) -> String {
        let mut buf = String::new();
        if let Some(meta) = &self.meta {
            buf.push_str(&meta.to_json());
            buf.push('\n');
        }
        for ev in &self.events {
            buf.push_str(&ev.to_json());
            buf.push('\n');
        }
        buf.push_str(&self.metrics.to_json());
        buf.push('\n');
        buf
    }
}

impl Observer for Recorder {
    fn on_event(&mut self, event: &GcEvent) {
        self.metrics.record(event);
        if self.keep_events {
            self.events.push(event.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// JSON rendering (hand-rolled: the repo takes no external dependencies)
// ---------------------------------------------------------------------------

struct JsonObj {
    buf: String,
}

impl JsonObj {
    fn new() -> JsonObj {
        JsonObj {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn int(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    fn signed(&mut self, k: &str, v: i64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    fn raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(v);
    }

    fn occupancy(&mut self, snaps: &[RegionSnapshot]) {
        let parts: Vec<String> = snaps
            .iter()
            .map(|s| {
                format!(
                    "{{\"region\":{},\"words\":{},\"budget\":{},\"pages\":{}}}",
                    s.region.0, s.words, s.budget, s.pages
                )
            })
            .collect();
        self.raw("occupancy", &format!("[{}]", parts.join(",")));
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Trace schema validation (the stability contract, in one place)
// ---------------------------------------------------------------------------

/// The expected JSON type of a field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FieldKind {
    Int,
    SignedInt,
    Bool,
    Str,
    /// Array of `[lo, hi, count]` integer triples (histograms).
    Buckets,
    /// Array of `{region, words, budget}` objects.
    Occupancy,
}

/// `(event name, required fields)` — every line of a trace must carry
/// exactly these keys with these types. Changing this table is a schema
/// change and must be reflected in DESIGN.md.
fn schema() -> &'static [(&'static str, &'static [(&'static str, FieldKind)])] {
    use FieldKind::*;
    &[
        (
            "meta",
            &[
                ("collector", Str),
                ("backend", Str),
                ("budget", Int),
                ("growth", Str),
                ("fuel", Int),
                ("step_interval", Int),
            ],
        ),
        (
            "region_alloc",
            &[
                ("step", Int),
                ("region", Int),
                ("budget", Int),
                ("heap_words", Int),
            ],
        ),
        (
            "region_free",
            &[
                ("step", Int),
                ("region", Int),
                ("words", Int),
                ("objects", Int),
            ],
        ),
        (
            "page_alloc",
            &[
                ("step", Int),
                ("region", Int),
                ("page", Int),
                ("class", Int),
                ("words", Int),
            ],
        ),
        (
            "page_free",
            &[
                ("step", Int),
                ("region", Int),
                ("page", Int),
                ("words", Int),
            ],
        ),
        (
            "gc_begin",
            &[
                ("step", Int),
                ("collection", Int),
                ("region", Int),
                ("region_words", Int),
                ("heap_words", Int),
                ("occupancy", Occupancy),
            ],
        ),
        (
            "copy",
            &[
                ("step", Int),
                ("region", Int),
                ("words", Int),
                ("promoted", Bool),
            ],
        ),
        (
            "gc_end",
            &[
                ("step", Int),
                ("collection", Int),
                ("gc_steps", Int),
                ("words_copied", Int),
                ("objects_copied", Int),
                ("words_promoted", Int),
                ("objects_promoted", Int),
                ("words_reclaimed", Int),
                ("kept_words", Int),
                ("to_space_words", Int),
                ("heap_words", Int),
                ("occupancy", Occupancy),
            ],
        ),
        (
            "step",
            &[
                ("step", Int),
                ("heap_words", Int),
                ("regions", Int),
                ("heap_pages", Int),
            ],
        ),
        ("fuel_exhausted", &[("step", Int)]),
        ("invariant_violation", &[("step", Int), ("detail", Str)]),
        ("oom", &[("step", Int), ("heap_words", Int), ("limit", Int)]),
        ("halt", &[("step", Int), ("value", SignedInt)]),
        (
            "summary",
            &[
                ("events", Int),
                ("collections", Int),
                ("regions_allocated", Int),
                ("regions_freed", Int),
                ("pages_allocated", Int),
                ("pages_freed", Int),
                ("words_copied", Int),
                ("objects_copied", Int),
                ("words_promoted", Int),
                ("objects_promoted", Int),
                ("words_reclaimed", Int),
                ("gc_steps", Int),
                ("max_heap_words", Int),
                ("copy_sizes", Buckets),
                ("collection_sizes", Buckets),
            ],
        ),
    ]
}

/// What a validated trace contained, for assertions beyond well-formedness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of lines (including `meta`/`summary`).
    pub lines: usize,
    /// Count of each event name, in schema order.
    pub counts: Vec<(&'static str, usize)>,
}

impl TraceSummary {
    /// How many lines carried the given event name.
    pub fn count(&self, name: &str) -> usize {
        self.counts
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, c)| *c)
    }
}

/// Validates a JSON-lines trace against the schema: every line must be a
/// flat JSON object whose `"event"` names a known event and which carries
/// exactly that event's fields with the right types; `step` fields must be
/// non-decreasing.
///
/// # Errors
///
/// Returns a message naming the offending line and problem.
pub fn validate_jsonl_trace(trace: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary {
        lines: 0,
        counts: schema().iter().map(|(n, _)| (*n, 0)).collect(),
    };
    let mut last_step: u64 = 0;
    for (i, line) in trace.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            return Err(format!("line {n}: empty line"));
        }
        summary.lines += 1;
        let obj = json::parse_object(line).map_err(|e| format!("line {n}: {e}"))?;
        let Some(json::Value::Str(event)) = obj.get("event") else {
            return Err(format!("line {n}: missing string \"event\" field"));
        };
        let Some((name, fields)) = schema().iter().find(|(name, _)| name == event) else {
            return Err(format!("line {n}: unknown event {event:?}"));
        };
        for (field, kind) in *fields {
            let Some(v) = obj.get(*field) else {
                return Err(format!("line {n}: {event} is missing field {field:?}"));
            };
            if !json::matches_kind(v, *kind) {
                return Err(format!(
                    "line {n}: {event} field {field:?} has the wrong type ({v:?}, expected {kind:?})"
                ));
            }
        }
        let expected = fields.len() + 1; // + the "event" field itself
        if obj.len() != expected {
            return Err(format!(
                "line {n}: {event} has {} fields, schema says {expected}",
                obj.len()
            ));
        }
        if let Some(json::Value::Int(step)) = obj.get("step") {
            let step = *step as u64;
            if step < last_step {
                return Err(format!(
                    "line {n}: step {step} goes backwards (previous {last_step})"
                ));
            }
            last_step = step;
        }
        for (cname, count) in &mut summary.counts {
            if cname == name {
                *count += 1;
            }
        }
    }
    if summary.lines == 0 {
        return Err("empty trace".into());
    }
    Ok(summary)
}

/// A minimal JSON parser — just enough to validate the traces this module
/// itself emits (objects, arrays, strings, integers, booleans).
mod json {
    use super::FieldKind;
    use std::collections::BTreeMap;

    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Int(i64),
        Bool(bool),
        Str(String),
        Arr(Vec<Value>),
        Obj(BTreeMap<String, Value>),
    }

    pub fn matches_kind(v: &Value, kind: FieldKind) -> bool {
        match kind {
            FieldKind::Int => matches!(v, Value::Int(n) if *n >= 0),
            FieldKind::SignedInt => matches!(v, Value::Int(_)),
            FieldKind::Bool => matches!(v, Value::Bool(_)),
            FieldKind::Str => matches!(v, Value::Str(_)),
            FieldKind::Buckets => match v {
                Value::Arr(items) => items.iter().all(|it| match it {
                    Value::Arr(triple) => {
                        triple.len() == 3
                            && triple.iter().all(|x| matches!(x, Value::Int(n) if *n >= 0))
                    }
                    _ => false,
                }),
                _ => false,
            },
            FieldKind::Occupancy => match v {
                Value::Arr(items) => items.iter().all(|it| match it {
                    Value::Obj(o) => {
                        o.len() == 4
                            && ["region", "words", "budget", "pages"]
                                .iter()
                                .all(|k| matches!(o.get(*k), Some(Value::Int(n)) if *n >= 0))
                    }
                    _ => false,
                }),
                _ => false,
            },
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    pub fn parse_object(s: &str) -> Result<BTreeMap<String, Value>, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        match v {
            Value::Obj(o) => Ok(o),
            other => Err(format!("not a JSON object: {other:?}")),
        }
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at offset {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'-') | Some(b'0'..=b'9') => self.number(),
                other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
            }
        }

        fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(v)
            } else {
                Err(format!("bad literal at offset {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|e| format!("non-UTF-8 number at offset {start}: {e}"))?;
            text.parse()
                .map(Value::Int)
                .map_err(|e| format!("bad integer {text:?} at offset {start}: {e}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                                self.pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Advance over one UTF-8 character.
                        let s = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| e.to_string())?;
                        let c = s.chars().next().ok_or("truncated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let val = self.value()?;
                if map.insert(key.clone(), val).is_some() {
                    return Err(format!("duplicate key {key:?}"));
                }
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{GrowthPolicy, MemConfig};
    use crate::syntax::Value;

    fn mem() -> Memory {
        Memory::new(MemConfig {
            region_budget: 4,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
            page_words: 8,
        })
    }

    #[test]
    fn disabled_telemetry_emits_nothing_and_tracks_nothing() {
        let mut t = Telemetry::default();
        let m = mem();
        t.on_gc_trigger(RegionName(1), &m, 1);
        t.on_put(RegionName(1), 3, 2);
        assert!(!t.is_enabled());
        assert!(t.phase.is_none(), "no phase tracking without an observer");
    }

    #[test]
    fn a_synthetic_collection_produces_balanced_events() {
        let rec = Recorder::new().into_shared();
        let mut t = Telemetry::default();
        t.attach(rec.clone(), 0);

        let mut m = mem();
        let from = m.alloc_region();
        t.on_region_alloc(from, &m, 1);
        for i in 0..4 {
            m.put(from, Value::Int(i)).unwrap();
            t.on_put(from, 1, 2 + i as u64);
        }
        // The region is full: trigger, copy into a fresh to-space, only.
        t.on_gc_trigger(from, &m, 10);
        let to = m.alloc_region();
        t.on_region_alloc(to, &m, 11);
        m.put(to, Value::pair(Value::Int(1), Value::Int(2)))
            .unwrap();
        t.on_put(to, 2, 12);
        let report = m.only(&[to]);
        t.on_only(&report, &m, 13);
        t.on_halt(0, 14);

        let rec = rec.borrow();
        let names: Vec<&str> = rec.events.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "region_alloc",
                "gc_begin",
                "region_alloc",
                "copy",
                "page_free",
                "region_free",
                "gc_end",
                "halt"
            ]
        );
        assert_eq!(rec.metrics.pages_freed, 1, "from-space held one page");
        assert_eq!(rec.metrics.collections, 1);
        assert_eq!(rec.metrics.words_copied, 2);
        assert_eq!(rec.metrics.objects_copied, 1);
        assert_eq!(
            rec.metrics.words_promoted, 0,
            "to-space is new: no promotion"
        );
        assert_eq!(rec.metrics.words_reclaimed, 4);
        match &rec.events[6] {
            GcEvent::GcEnd {
                to_space_words,
                gc_steps,
                ..
            } => {
                assert_eq!(*to_space_words, 2);
                assert_eq!(*gc_steps, 3);
            }
            other => panic!("expected GcEnd, got {other:?}"),
        }
    }

    #[test]
    fn copies_into_preexisting_regions_are_promotions() {
        let rec = Recorder::new().into_shared();
        let mut t = Telemetry::default();
        t.attach(rec.clone(), 0);

        let mut m = mem();
        let old = m.alloc_region();
        let young = m.alloc_region();
        for i in 0..4 {
            m.put(young, Value::Int(i)).unwrap();
        }
        t.on_gc_trigger(young, &m, 5);
        m.put(old, Value::Int(7)).unwrap();
        t.on_put(old, 1, 6); // promotion: `old` predates the collection
        let report = m.only(&[old]);
        t.on_only(&report, &m, 7);

        let rec = rec.borrow();
        assert_eq!(rec.metrics.objects_promoted, 1);
        assert_eq!(rec.metrics.words_promoted, 1);
        assert!(matches!(
            rec.events.iter().find(|e| e.name() == "copy"),
            Some(GcEvent::Copy { promoted: true, .. })
        ));
    }

    #[test]
    fn step_sampling_respects_the_interval() {
        let rec = Recorder::new().into_shared();
        let mut t = Telemetry::default();
        t.attach(rec.clone(), 10);
        let m = mem();
        for step in 1..=35 {
            t.on_step(step, &m);
        }
        assert_eq!(rec.borrow().events.len(), 3, "samples at steps 10, 20, 30");
    }

    #[test]
    fn recorder_jsonl_roundtrips_through_the_validator() {
        let rec = Recorder::new().into_shared();
        let mut t = Telemetry::default();
        t.attach(rec.clone(), 1);
        let mut m = mem();
        let r = m.alloc_region();
        t.on_region_alloc(r, &m, 1);
        t.on_step(2, &m);
        t.on_gc_trigger(r, &m, 3);
        let to = m.alloc_region();
        t.on_region_alloc(to, &m, 4);
        t.on_put(to, 2, 5);
        let report = m.only(&[to]);
        t.on_only(&report, &m, 6);
        t.on_fuel_exhausted(7);
        t.on_halt(-3, 8);

        let trace = {
            let mut r = rec.borrow_mut();
            r.meta = Some(RunMeta {
                collector: "basic".into(),
                backend: "env".into(),
                budget: 4,
                growth: "fixed".into(),
                fuel: 100,
                step_interval: 1,
            });
            r.to_jsonl()
        };
        let summary = validate_jsonl_trace(&trace).expect("trace validates");
        assert_eq!(summary.count("meta"), 1);
        assert_eq!(summary.count("summary"), 1);
        assert_eq!(summary.count("gc_begin"), 1);
        assert_eq!(summary.count("gc_end"), 1);
        assert_eq!(summary.count("halt"), 1);
        assert_eq!(summary.count("fuel_exhausted"), 1);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_jsonl_trace("").is_err());
        assert!(validate_jsonl_trace("not json").is_err());
        assert!(validate_jsonl_trace("{\"event\":\"nope\"}").is_err());
        // Missing fields:
        assert!(validate_jsonl_trace("{\"event\":\"halt\",\"step\":1}").is_err());
        // Extra fields:
        assert!(
            validate_jsonl_trace("{\"event\":\"halt\",\"step\":1,\"value\":2,\"extra\":3}")
                .is_err()
        );
        // Wrong type:
        assert!(validate_jsonl_trace("{\"event\":\"halt\",\"step\":1,\"value\":\"x\"}").is_err());
        // Steps running backwards:
        let backwards = "{\"event\":\"fuel_exhausted\",\"step\":5}\n\
                         {\"event\":\"fuel_exhausted\",\"step\":4}";
        assert!(validate_jsonl_trace(backwards).is_err());
    }

    #[test]
    fn page_events_roundtrip_through_the_validator() {
        let rec = Recorder::new().into_shared();
        let mut t = Telemetry::default();
        t.attach(rec.clone(), 1);
        let mut m = mem();
        let r = m.alloc_region();
        t.on_region_alloc(r, &m, 1);
        let put = m.put_counted(r, Value::Int(9)).unwrap();
        let alloc = put.page.expect("first put opens a page");
        t.on_page_alloc(r, alloc, 2);
        t.on_step(3, &m);
        let report = m.only(&[]);
        t.on_only(&report, &m, 4);
        t.on_halt(0, 5);

        let trace = rec.borrow().to_jsonl();
        let summary = validate_jsonl_trace(&trace).expect("trace validates");
        assert_eq!(summary.count("page_alloc"), 1);
        assert_eq!(summary.count("page_free"), 1);
        let rec = rec.borrow();
        assert_eq!(rec.metrics.pages_allocated, 1);
        assert_eq!(rec.metrics.pages_freed, 1);
        assert!(matches!(
            rec.events.iter().find(|e| e.name() == "step"),
            Some(GcEvent::Step { heap_pages: 1, .. })
        ));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(
            h.nonzero_buckets(),
            vec![
                (0, 0, 1),
                (1, 1, 2),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (512, 1023, 1)
            ]
        );
    }

    #[test]
    fn null_observer_observes_nothing() {
        let mut t = Telemetry::default();
        t.attach(Rc::new(RefCell::new(NullObserver)), 0);
        assert!(t.is_enabled());
        t.on_halt(1, 1); // must not panic
    }
}
