//! Reference (pre-interning) normalization and α-equivalence.
//!
//! These are the straightforward structural-recursion implementations that
//! [`crate::tags`] and [`crate::moper`] used before tags and types were
//! hash-consed: no memo tables, no canonical forms, no free-variable
//! fingerprints — every call walks the whole tree and α-compares with an
//! explicit binder-pairing environment.
//!
//! Since terms and values were interned too, the module also keeps the
//! pre-interning recursive *substitution* ([`RefSubst`]): every node is
//! rebuilt unconditionally, with no free-variable fingerprints and no
//! same-id short-circuit, plus term/value α-equivalence
//! ([`term_alpha_eq`], [`value_alpha_eq`]) to compare its answers against
//! the fingerprint-skipping [`crate::subst::Subst`] fast path.
//!
//! They are kept (and exported) for one purpose: the differential suite in
//! `tests/intern_agreement.rs` property-checks the memoized, id-keyed fast
//! paths against these slow-but-obviously-correct ports. Nothing in the
//! crate's own pipeline calls them.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ps_ir::Symbol;

use crate::subst::Subst;
use crate::syntax::{CodeDef, Dialect, Kind, Op, Region, Tag, Term, Ty, Value};

// ----- tags --------------------------------------------------------------

/// [`crate::tags::normalize`] by direct normal-order reduction, no memo.
pub fn normalize_tag(tau: &Tag) -> Tag {
    normalize_tag_counted(tau, &mut 0)
}

/// Like [`normalize_tag`] but counts β-steps, mirroring
/// [`crate::tags::normalize_counted`].
pub fn normalize_tag_counted(tau: &Tag, steps: &mut u64) -> Tag {
    match tau {
        Tag::Var(_) | Tag::Int | Tag::AnyArrow(_) => tau.clone(),
        Tag::Prod(a, b) => Tag::prod(
            normalize_tag_counted(a, steps),
            normalize_tag_counted(b, steps),
        ),
        Tag::Arrow(args) => Tag::arrow(
            args.iter()
                .map(|a| normalize_tag_counted(a, steps))
                .collect::<Vec<_>>(),
        ),
        Tag::Exist(t, body) => Tag::exist(*t, normalize_tag_counted(body, steps)),
        Tag::Lam(t, body) => Tag::lam(*t, normalize_tag_counted(body, steps)),
        Tag::App(f, a) => {
            let f = normalize_tag_counted(f, steps);
            match f {
                Tag::Lam(t, body) => {
                    *steps += 1;
                    // Normal order: substitute the *unnormalized* argument.
                    let reduced = Subst::one_tag(t, a.node().clone()).tag(body.node());
                    normalize_tag_counted(&reduced, steps)
                }
                _ => Tag::app(f, normalize_tag_counted(a, steps)),
            }
        }
    }
}

fn var_eq(x: Symbol, y: Symbol, env: &[(Symbol, Symbol)]) -> bool {
    for &(a, b) in env.iter().rev() {
        if a == x || b == y {
            return a == x && b == y;
        }
    }
    x == y
}

/// α-equivalence of tags by explicit binder pairing.
pub fn tag_alpha_eq(a: &Tag, b: &Tag) -> bool {
    fn go(a: &Tag, b: &Tag, env: &mut Vec<(Symbol, Symbol)>) -> bool {
        match (a, b) {
            (Tag::Var(x), Tag::Var(y)) | (Tag::AnyArrow(x), Tag::AnyArrow(y)) => {
                var_eq(*x, *y, env)
            }
            (Tag::Int, Tag::Int) => true,
            (Tag::Prod(a1, a2), Tag::Prod(b1, b2)) | (Tag::App(a1, a2), Tag::App(b1, b2)) => {
                go(a1, b1, env) && go(a2, b2, env)
            }
            (Tag::Arrow(xs), Tag::Arrow(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| go(x, y, env))
            }
            (Tag::Exist(x, bx), Tag::Exist(y, by)) | (Tag::Lam(x, bx), Tag::Lam(y, by)) => {
                env.push((*x, *y));
                let r = go(bx, by, env);
                env.pop();
                r
            }
            _ => false,
        }
    }
    go(a, b, &mut Vec::new())
}

/// Tag equality: reference-normalize both sides, then α-compare.
pub fn tag_eq(a: &Tag, b: &Tag) -> bool {
    tag_alpha_eq(&normalize_tag(a), &normalize_tag(b))
}

// ----- types -------------------------------------------------------------

fn r_m() -> Symbol {
    Symbol::intern("r!m")
}
fn ry_m() -> Symbol {
    Symbol::intern("ry!m")
}
fn ro_m() -> Symbol {
    Symbol::intern("ro!m")
}

/// Deduplicated region set, preserving first-occurrence order (the
/// pre-interning [`crate::moper::region_set`] behavior).
fn region_set(rs: &[Region]) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::with_capacity(rs.len());
    for r in rs {
        if !out.contains(r) {
            out.push(*r);
        }
    }
    out
}

fn expand_m(dialect: Dialect, rho: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(dialect, args.iter().map(|a| a.node().clone()))),
        Tag::Prod(a, b) => {
            let inner = Ty::prod(Ty::m(rho, a.node().clone()), Ty::m(rho, b.node().clone()));
            Some(match dialect {
                Dialect::Basic | Dialect::Generational => inner.at(rho),
                Dialect::Forwarding => Ty::Left(inner.id()).at(rho),
            })
        }
        Tag::Exist(t, body) => {
            let inner = Ty::exist_tag(*t, Kind::Omega, Ty::m(rho, body.node().clone()));
            Some(match dialect {
                Dialect::Basic | Dialect::Generational => inner.at(rho),
                Dialect::Forwarding => Ty::Left(inner.id()).at(rho),
            })
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

fn code_rep(dialect: Dialect, args: impl IntoIterator<Item = Tag>) -> Ty {
    match dialect {
        Dialect::Basic | Dialect::Forwarding => {
            let r = r_m();
            Ty::code(
                [],
                [r],
                args.into_iter()
                    .map(|a| Ty::m(Region::Var(r), a))
                    .collect::<Vec<_>>(),
            )
            .at(Region::cd())
        }
        Dialect::Generational => {
            let ry = ry_m();
            let ro = ro_m();
            Ty::code(
                [],
                [ry, ro],
                args.into_iter()
                    .map(|a| Ty::mgen(Region::Var(ry), Region::Var(ro), a))
                    .collect::<Vec<_>>(),
            )
            .at(Region::cd())
        }
    }
}

fn expand_c(from: Region, to: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(
            Dialect::Forwarding,
            args.iter().map(|a| a.node().clone()),
        )),
        Tag::Prod(a, b) => {
            let left = Ty::prod(
                Ty::c(from, to, a.node().clone()),
                Ty::c(from, to, b.node().clone()),
            );
            let right = Ty::m(to, tag.clone());
            Some(Ty::sum(left, right).at(from))
        }
        Tag::Exist(t, body) => {
            let left = Ty::exist_tag(*t, Kind::Omega, Ty::c(from, to, body.node().clone()));
            let right = Ty::m(to, tag.clone());
            Some(Ty::sum(left, right).at(from))
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

fn expand_mgen(young: Region, old: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(
            Dialect::Generational,
            args.iter().map(|a| a.node().clone()),
        )),
        Tag::Prod(a, b) => {
            let r = r_m();
            let body = Ty::prod(
                Ty::mgen(Region::Var(r), old, a.node().clone()),
                Ty::mgen(Region::Var(r), old, b.node().clone()),
            );
            Some(Ty::exist_rgn(r, region_set(&[young, old]), body))
        }
        Tag::Exist(t, body) => {
            let r = r_m();
            let inner = Ty::exist_tag(
                *t,
                Kind::Omega,
                Ty::mgen(Region::Var(r), old, body.node().clone()),
            );
            Some(Ty::exist_rgn(r, region_set(&[young, old]), inner))
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

/// [`crate::moper::normalize_ty`] by direct structural recursion, no memo.
pub fn normalize_ty(sigma: &Ty, dialect: Dialect) -> Ty {
    match sigma {
        Ty::Int | Ty::Alpha(_) => sigma.clone(),
        Ty::Prod(a, b) => Ty::prod(normalize_ty(a, dialect), normalize_ty(b, dialect)),
        Ty::Sum(a, b) => Ty::sum(normalize_ty(a, dialect), normalize_ty(b, dialect)),
        Ty::Left(a) => Ty::Left(normalize_ty(a, dialect).id()),
        Ty::Right(a) => Ty::Right(normalize_ty(a, dialect).id()),
        Ty::Code { tvars, rvars, args } => Ty::code(
            tvars.iter().copied(),
            rvars.iter().copied(),
            args.iter()
                .map(|a| normalize_ty(a, dialect))
                .collect::<Vec<_>>(),
        ),
        Ty::ExistTag { tvar, kind, body } => {
            Ty::exist_tag(*tvar, *kind, normalize_ty(body, dialect))
        }
        Ty::At(inner, rho) => normalize_ty(inner, dialect).at(*rho),
        Ty::M(rho, tag) => {
            let nf = normalize_tag(tag);
            if let Tag::AnyArrow(_) = nf {
                return Ty::m(Region::cd(), nf);
            }
            match expand_m(dialect, *rho, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::m(*rho, nf),
            }
        }
        Ty::C(from, to, tag) => {
            let nf = normalize_tag(tag);
            if let Tag::AnyArrow(_) = nf {
                return Ty::m(Region::cd(), nf);
            }
            match expand_c(*from, *to, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::c(*from, *to, nf),
            }
        }
        Ty::MGen(y, o, tag) => {
            let nf = normalize_tag(tag);
            if let Tag::AnyArrow(_) = nf {
                return Ty::m(Region::cd(), nf);
            }
            match expand_mgen(*y, *o, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::mgen(*y, *o, nf),
            }
        }
        Ty::ExistAlpha {
            avar,
            regions,
            body,
        } => Ty::exist_alpha(*avar, region_set(regions), normalize_ty(body, dialect)),
        Ty::Trans {
            tags: ts,
            regions,
            args,
            rho,
        } => Ty::Trans {
            tags: ts.iter().map(|t| normalize_tag(t).id()).collect(),
            regions: regions.clone(),
            args: args.iter().map(|a| normalize_ty(a, dialect).id()).collect(),
            rho: *rho,
        },
        Ty::ExistRgn { rvar, bound, body } => {
            Ty::exist_rgn(*rvar, region_set(bound), normalize_ty(body, dialect))
        }
    }
}

/// Environment of corresponding binders for type α-comparison.
#[derive(Default)]
struct AlphaEnv {
    tags: Vec<(Symbol, Symbol)>,
    rgns: Vec<(Symbol, Symbol)>,
    alphas: Vec<(Symbol, Symbol)>,
}

fn region_eq(a: &Region, b: &Region, env: &AlphaEnv) -> bool {
    match (a, b) {
        (Region::Var(x), Region::Var(y)) => var_eq(*x, *y, &env.rgns),
        (Region::Name(x), Region::Name(y)) => x == y,
        _ => false,
    }
}

/// Compares two region sets as sets under the α-environment.
fn region_set_eq(a: &[Region], b: &[Region], env: &AlphaEnv) -> bool {
    a.iter().all(|x| b.iter().any(|y| region_eq(x, y, env)))
        && b.iter().all(|y| a.iter().any(|x| region_eq(x, y, env)))
}

fn tag_eq_env(a: &Tag, b: &Tag, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (Tag::Var(x), Tag::Var(y)) | (Tag::AnyArrow(x), Tag::AnyArrow(y)) => {
            var_eq(*x, *y, &env.tags)
        }
        (Tag::Int, Tag::Int) => true,
        (Tag::Prod(a1, a2), Tag::Prod(b1, b2)) | (Tag::App(a1, a2), Tag::App(b1, b2)) => {
            tag_eq_env(a1, b1, env) && tag_eq_env(a2, b2, env)
        }
        (Tag::Arrow(xs), Tag::Arrow(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| tag_eq_env(x, y, env))
        }
        (Tag::Exist(x, bx), Tag::Exist(y, by)) | (Tag::Lam(x, bx), Tag::Lam(y, by)) => {
            env.tags.push((*x, *y));
            let r = tag_eq_env(bx, by, env);
            env.tags.pop();
            r
        }
        _ => false,
    }
}

fn ty_eq_env(a: &Ty, b: &Ty, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (Ty::Int, Ty::Int) => true,
        (Ty::Prod(a1, a2), Ty::Prod(b1, b2)) | (Ty::Sum(a1, a2), Ty::Sum(b1, b2)) => {
            ty_eq_env(a1, b1, env) && ty_eq_env(a2, b2, env)
        }
        (Ty::Left(x), Ty::Left(y)) | (Ty::Right(x), Ty::Right(y)) => ty_eq_env(x, y, env),
        (
            Ty::Code {
                tvars: tv1,
                rvars: rv1,
                args: a1,
            },
            Ty::Code {
                tvars: tv2,
                rvars: rv2,
                args: a2,
            },
        ) => {
            if tv1.len() != tv2.len() || rv1.len() != rv2.len() || a1.len() != a2.len() {
                return false;
            }
            if tv1
                .iter()
                .zip(tv2.iter())
                .any(|((_, k1), (_, k2))| k1 != k2)
            {
                return false;
            }
            let nt = tv1.len();
            let nr = rv1.len();
            for ((t1, _), (t2, _)) in tv1.iter().zip(tv2.iter()) {
                env.tags.push((*t1, *t2));
            }
            for (r1, r2) in rv1.iter().zip(rv2.iter()) {
                env.rgns.push((*r1, *r2));
            }
            let r = a1.iter().zip(a2.iter()).all(|(x, y)| ty_eq_env(x, y, env));
            env.tags.truncate(env.tags.len() - nt);
            env.rgns.truncate(env.rgns.len() - nr);
            r
        }
        (
            Ty::ExistTag {
                tvar: t1,
                kind: k1,
                body: b1,
            },
            Ty::ExistTag {
                tvar: t2,
                kind: k2,
                body: b2,
            },
        ) => {
            if k1 != k2 {
                return false;
            }
            env.tags.push((*t1, *t2));
            let r = ty_eq_env(b1, b2, env);
            env.tags.pop();
            r
        }
        (Ty::At(x, rx), Ty::At(y, ry)) => region_eq(rx, ry, env) && ty_eq_env(x, y, env),
        (Ty::M(r1, t1), Ty::M(r2, t2)) => region_eq(r1, r2, env) && tag_eq_env(t1, t2, env),
        (Ty::C(f1, o1, t1), Ty::C(f2, o2, t2)) => {
            region_eq(f1, f2, env) && region_eq(o1, o2, env) && tag_eq_env(t1, t2, env)
        }
        (Ty::MGen(y1, o1, t1), Ty::MGen(y2, o2, t2)) => {
            region_eq(y1, y2, env) && region_eq(o1, o2, env) && tag_eq_env(t1, t2, env)
        }
        (Ty::Alpha(x), Ty::Alpha(y)) => var_eq(*x, *y, &env.alphas),
        (
            Ty::ExistAlpha {
                avar: a1,
                regions: d1,
                body: b1,
            },
            Ty::ExistAlpha {
                avar: a2,
                regions: d2,
                body: b2,
            },
        ) => {
            if !region_set_eq(d1, d2, env) {
                return false;
            }
            env.alphas.push((*a1, *a2));
            let r = ty_eq_env(b1, b2, env);
            env.alphas.pop();
            r
        }
        (
            Ty::Trans {
                tags: ts1,
                regions: rs1,
                args: a1,
                rho: rho1,
            },
            Ty::Trans {
                tags: ts2,
                regions: rs2,
                args: a2,
                rho: rho2,
            },
        ) => {
            ts1.len() == ts2.len()
                && rs1.len() == rs2.len()
                && a1.len() == a2.len()
                && region_eq(rho1, rho2, env)
                && ts1
                    .iter()
                    .zip(ts2.iter())
                    .all(|(x, y)| tag_eq_env(x, y, env))
                && rs1
                    .iter()
                    .zip(rs2.iter())
                    .all(|(x, y)| region_eq(x, y, env))
                && a1.iter().zip(a2.iter()).all(|(x, y)| ty_eq_env(x, y, env))
        }
        (
            Ty::ExistRgn {
                rvar: r1,
                bound: d1,
                body: b1,
            },
            Ty::ExistRgn {
                rvar: r2,
                bound: d2,
                body: b2,
            },
        ) => {
            if !region_set_eq(d1, d2, env) {
                return false;
            }
            env.rgns.push((*r1, *r2));
            let r = ty_eq_env(b1, b2, env);
            env.rgns.pop();
            r
        }
        _ => false,
    }
}

/// α-equivalence of types by explicit binder pairing (no normalization).
pub fn ty_alpha_eq(a: &Ty, b: &Ty) -> bool {
    ty_eq_env(a, b, &mut AlphaEnv::default())
}

/// Type equality: reference-normalize both sides, then α-compare.
pub fn ty_eq(a: &Ty, b: &Ty, dialect: Dialect) -> bool {
    if a == b {
        return true;
    }
    ty_alpha_eq(&normalize_ty(a, dialect), &normalize_ty(b, dialect))
}

// ----- terms and values --------------------------------------------------

/// Pre-interning recursive substitution over the four λGC namespaces.
///
/// This is the straightforward capture-avoiding structural recursion that
/// [`crate::subst::Subst`] performed before terms and values were
/// hash-consed: every node is rebuilt unconditionally — no free-variable
/// fingerprints, no same-id short-circuit, no skip counters. Tag and α
/// binders are renamed to a fresh name on *every* entry (the
/// obviously-correct capture-avoidance policy), so results agree with the
/// fast path only up to α — compare with [`term_alpha_eq`].
///
/// Two deliberate asymmetries mirror `Subst` exactly, because they are
/// semantic rather than representational:
///
/// * value binders are never renamed (runtime ranges are closed in `x`,
///   and both paths must shadow identically), and
/// * region binders are renamed only when they would capture a free
///   region variable of a *region* range — region variables inside α and
///   value witnesses are intentionally capturable (the Fig. 12
///   translucency pun; see [`Subst::with_alpha`]).
#[derive(Clone, Debug, Default)]
pub struct RefSubst {
    tags: HashMap<Symbol, Tag>,
    rgns: HashMap<Symbol, Region>,
    alphas: HashMap<Symbol, Ty>,
    vals: HashMap<Symbol, Value>,
    /// Free region variables of the region ranges — the one capture check
    /// that must *not* be conservative (see the translucency pun above).
    range_rvars: HashSet<Symbol>,
}

impl RefSubst {
    /// The empty substitution.
    pub fn new() -> RefSubst {
        RefSubst::default()
    }

    /// Extends with `t ↦ τ`.
    #[must_use]
    pub fn with_tag(mut self, t: Symbol, tau: Tag) -> RefSubst {
        self.tags.insert(t, tau);
        self
    }

    /// Extends with `r ↦ ρ`.
    #[must_use]
    pub fn with_rgn(mut self, r: Symbol, rho: Region) -> RefSubst {
        if let Region::Var(v) = rho {
            self.range_rvars.insert(v);
        }
        self.rgns.insert(r, rho);
        self
    }

    /// Extends with `α ↦ σ`.
    #[must_use]
    pub fn with_alpha(mut self, a: Symbol, sigma: Ty) -> RefSubst {
        self.alphas.insert(a, sigma);
        self
    }

    /// Extends with `x ↦ v`.
    #[must_use]
    pub fn with_val(mut self, x: Symbol, v: Value) -> RefSubst {
        self.vals.insert(x, v);
        self
    }

    // ----- binder entry (always-fresh for tags and α) --------------------

    fn enter_tag_binder(&self, t: Symbol) -> (RefSubst, Symbol) {
        let mut sub = self.clone();
        sub.tags.remove(&t);
        let fresh = t.fresh();
        sub.tags.insert(t, Tag::Var(fresh));
        (sub, fresh)
    }

    fn enter_alpha_binder(&self, a: Symbol) -> (RefSubst, Symbol) {
        let mut sub = self.clone();
        sub.alphas.remove(&a);
        let fresh = a.fresh();
        sub.alphas.insert(a, Ty::Alpha(fresh));
        (sub, fresh)
    }

    fn enter_rgn_binder(&self, r: Symbol) -> (RefSubst, Symbol) {
        let mut sub = self.clone();
        sub.rgns.remove(&r);
        if sub.range_rvars.contains(&r) {
            let fresh = r.fresh();
            sub.range_rvars.insert(fresh);
            sub.rgns.insert(r, Region::Var(fresh));
            (sub, fresh)
        } else {
            (sub, r)
        }
    }

    fn enter_val_binder(&self, x: Symbol) -> RefSubst {
        let mut sub = self.clone();
        sub.vals.remove(&x);
        sub
    }

    // ----- application ----------------------------------------------------

    /// Applies the substitution to a region.
    pub fn region(&self, rho: &Region) -> Region {
        match rho {
            Region::Var(r) => self.rgns.get(r).copied().unwrap_or(*rho),
            Region::Name(_) => *rho,
        }
    }

    /// Applies the substitution to a tag, rebuilding every node.
    pub fn tag(&self, tau: &Tag) -> Tag {
        match tau {
            Tag::Var(t) => self.tags.get(t).cloned().unwrap_or_else(|| tau.clone()),
            Tag::AnyArrow(t) => match self.tags.get(t) {
                Some(Tag::Var(t2)) => Tag::AnyArrow(*t2),
                Some(concrete @ Tag::Arrow(_)) => concrete.clone(),
                Some(Tag::AnyArrow(t2)) => Tag::AnyArrow(*t2),
                Some(other) => other.clone(),
                None => tau.clone(),
            },
            Tag::Int => Tag::Int,
            Tag::Prod(a, b) => Tag::prod(self.tag(a), self.tag(b)),
            Tag::Arrow(args) => Tag::arrow(args.iter().map(|a| self.tag(a)).collect::<Vec<_>>()),
            Tag::Exist(t, body) => {
                let (sub, t2) = self.enter_tag_binder(*t);
                Tag::exist(t2, sub.tag(body))
            }
            Tag::Lam(t, body) => {
                let (sub, t2) = self.enter_tag_binder(*t);
                Tag::lam(t2, sub.tag(body))
            }
            Tag::App(f, a) => Tag::app(self.tag(f), self.tag(a)),
        }
    }

    /// Applies the substitution to a type, rebuilding every node.
    pub fn ty(&self, sigma: &Ty) -> Ty {
        match sigma {
            Ty::Int => Ty::Int,
            Ty::Prod(a, b) => Ty::prod(self.ty(a), self.ty(b)),
            Ty::Sum(a, b) => Ty::sum(self.ty(a), self.ty(b)),
            Ty::Left(a) => Ty::Left(self.ty(a).id()),
            Ty::Right(a) => Ty::Right(self.ty(a).id()),
            Ty::Code { tvars, rvars, args } => {
                let mut sub = self.clone();
                let mut tvs = Vec::with_capacity(tvars.len());
                for (t, k) in tvars.iter() {
                    let (s2, t2) = sub.enter_tag_binder(*t);
                    sub = s2;
                    tvs.push((t2, *k));
                }
                let mut rvs = Vec::with_capacity(rvars.len());
                for r in rvars.iter() {
                    let (s2, r2) = sub.enter_rgn_binder(*r);
                    sub = s2;
                    rvs.push(r2);
                }
                Ty::code(tvs, rvs, args.iter().map(|a| sub.ty(a)).collect::<Vec<_>>())
            }
            Ty::ExistTag { tvar, kind, body } => {
                let (sub, t2) = self.enter_tag_binder(*tvar);
                Ty::exist_tag(t2, *kind, sub.ty(body))
            }
            Ty::At(inner, rho) => self.ty(inner).at(self.region(rho)),
            Ty::M(rho, tag) => Ty::m(self.region(rho), self.tag(tag)),
            Ty::C(from, to, tag) => Ty::c(self.region(from), self.region(to), self.tag(tag)),
            Ty::MGen(y, o, tag) => Ty::mgen(self.region(y), self.region(o), self.tag(tag)),
            Ty::Alpha(a) => self.alphas.get(a).cloned().unwrap_or_else(|| sigma.clone()),
            Ty::ExistAlpha {
                avar,
                regions,
                body,
            } => {
                let regions: Vec<Region> = regions.iter().map(|r| self.region(r)).collect();
                let (sub, a2) = self.enter_alpha_binder(*avar);
                Ty::exist_alpha(a2, regions, sub.ty(body))
            }
            Ty::Trans {
                tags,
                regions,
                args,
                rho,
            } => Ty::Trans {
                tags: tags.iter().map(|t| self.tag(t).id()).collect(),
                regions: regions.iter().map(|r| self.region(r)).collect(),
                args: args.iter().map(|a| self.ty(a).id()).collect(),
                rho: self.region(rho),
            },
            Ty::ExistRgn { rvar, bound, body } => {
                let bound: Vec<Region> = bound.iter().map(|r| self.region(r)).collect();
                let (sub, r2) = self.enter_rgn_binder(*rvar);
                Ty::exist_rgn(r2, bound, sub.ty(body))
            }
        }
    }

    /// Applies the substitution to a value, rebuilding every node.
    pub fn value(&self, v: &Value) -> Value {
        match v {
            Value::Int(_) | Value::Addr(..) => v.clone(),
            Value::Var(x) => self.vals.get(x).cloned().unwrap_or_else(|| v.clone()),
            Value::Pair(a, b) => Value::pair(self.value(a), self.value(b)),
            Value::PackTag {
                tvar,
                kind,
                tag,
                val,
                body_ty,
            } => {
                let tag = self.tag(tag);
                let val = self.value(val).id();
                let (sub, t2) = self.enter_tag_binder(*tvar);
                Value::PackTag {
                    tvar: t2,
                    kind: *kind,
                    tag,
                    val,
                    body_ty: sub.ty(body_ty),
                }
            }
            Value::PackAlpha {
                avar,
                regions,
                witness,
                val,
                body_ty,
            } => {
                let regions: Arc<[Region]> = regions.iter().map(|r| self.region(r)).collect();
                let witness = self.ty(witness);
                let val = self.value(val).id();
                let (sub, a2) = self.enter_alpha_binder(*avar);
                Value::PackAlpha {
                    avar: a2,
                    regions,
                    witness,
                    val,
                    body_ty: sub.ty(body_ty),
                }
            }
            Value::PackRgn {
                rvar,
                bound,
                witness,
                val,
                body_ty,
            } => {
                let bound: Arc<[Region]> = bound.iter().map(|r| self.region(r)).collect();
                let witness = self.region(witness);
                let val = self.value(val).id();
                let (sub, r2) = self.enter_rgn_binder(*rvar);
                Value::PackRgn {
                    rvar: r2,
                    bound,
                    witness,
                    val,
                    body_ty: sub.ty(body_ty),
                }
            }
            Value::TagApp(f, tags, regions) => Value::TagApp(
                self.value(f).id(),
                tags.iter().map(|t| self.tag(t)).collect(),
                regions.iter().map(|r| self.region(r)).collect(),
            ),
            Value::Code(def) => Value::Code(Arc::new(self.code_def(def))),
            Value::Inl(x) => Value::Inl(self.value(x).id()),
            Value::Inr(x) => Value::Inr(self.value(x).id()),
        }
    }

    /// Applies the substitution to an operation.
    pub fn op(&self, op: &Op) -> Op {
        match op {
            Op::Val(v) => Op::Val(self.value(v)),
            Op::Proj(i, v) => Op::Proj(*i, self.value(v)),
            Op::Put(rho, v) => Op::Put(self.region(rho), self.value(v)),
            Op::Get(v) => Op::Get(self.value(v)),
            Op::Strip(v) => Op::Strip(self.value(v)),
            Op::Prim(p, a, b) => Op::Prim(*p, self.value(a), self.value(b)),
        }
    }

    /// Applies the substitution to a code definition.
    pub fn code_def(&self, def: &CodeDef) -> CodeDef {
        let mut sub = self.clone();
        let mut tvs = Vec::with_capacity(def.tvars.len());
        for (t, k) in &def.tvars {
            let (s2, t2) = sub.enter_tag_binder(*t);
            sub = s2;
            tvs.push((t2, *k));
        }
        let mut rvs = Vec::with_capacity(def.rvars.len());
        for r in &def.rvars {
            let (s2, r2) = sub.enter_rgn_binder(*r);
            sub = s2;
            rvs.push(r2);
        }
        let mut params = Vec::with_capacity(def.params.len());
        for (x, t) in &def.params {
            params.push((*x, sub.ty(t)));
        }
        for (x, _) in &def.params {
            sub = sub.enter_val_binder(*x);
        }
        CodeDef {
            name: def.name,
            tvars: tvs,
            rvars: rvs,
            params,
            body: sub.term(&def.body),
        }
    }

    /// Applies the substitution to a term, rebuilding every node.
    pub fn term(&self, e: &Term) -> Term {
        match e {
            Term::App {
                f,
                tags,
                regions,
                args,
            } => Term::App {
                f: self.value(f),
                tags: tags.iter().map(|t| self.tag(t)).collect(),
                regions: regions.iter().map(|r| self.region(r)).collect(),
                args: args.iter().map(|v| self.value(v)).collect(),
            },
            Term::Let { x, op, body } => {
                let op = self.op(op);
                let sub = self.enter_val_binder(*x);
                Term::let_(*x, op, sub.term(body))
            }
            Term::Halt(v) => Term::Halt(self.value(v)),
            Term::IfGc { rho, full, cont } => Term::IfGc {
                rho: self.region(rho),
                full: self.term(full).id(),
                cont: self.term(cont).id(),
            },
            Term::OpenTag { pkg, tvar, x, body } => {
                let pkg = self.value(pkg);
                let (sub, t2) = self.enter_tag_binder(*tvar);
                let sub = sub.enter_val_binder(*x);
                Term::OpenTag {
                    pkg,
                    tvar: t2,
                    x: *x,
                    body: sub.term(body).id(),
                }
            }
            Term::OpenAlpha { pkg, avar, x, body } => {
                let pkg = self.value(pkg);
                let (sub, a2) = self.enter_alpha_binder(*avar);
                let sub = sub.enter_val_binder(*x);
                Term::OpenAlpha {
                    pkg,
                    avar: a2,
                    x: *x,
                    body: sub.term(body).id(),
                }
            }
            Term::OpenRgn { pkg, rvar, x, body } => {
                let pkg = self.value(pkg);
                let (sub, r2) = self.enter_rgn_binder(*rvar);
                let sub = sub.enter_val_binder(*x);
                Term::OpenRgn {
                    pkg,
                    rvar: r2,
                    x: *x,
                    body: sub.term(body).id(),
                }
            }
            Term::LetRegion { rvar, body } => {
                let (sub, r2) = self.enter_rgn_binder(*rvar);
                Term::LetRegion {
                    rvar: r2,
                    body: sub.term(body).id(),
                }
            }
            Term::Only { regions, body } => Term::Only {
                regions: regions.iter().map(|r| self.region(r)).collect(),
                body: self.term(body).id(),
            },
            Term::Typecase {
                tag,
                int_arm,
                arrow_arm,
                prod_arm,
                exist_arm,
            } => {
                let tag = self.tag(tag);
                let int_arm = self.term(int_arm).id();
                let arrow_arm = self.term(arrow_arm).id();
                let (t1, t2, pe) = prod_arm;
                let (s1, t1b) = self.enter_tag_binder(*t1);
                let (s2, t2b) = s1.enter_tag_binder(*t2);
                let prod_arm = (t1b, t2b, s2.term(pe).id());
                let (te, ee) = exist_arm;
                let (s3, teb) = self.enter_tag_binder(*te);
                let exist_arm = (teb, s3.term(ee).id());
                Term::Typecase {
                    tag,
                    int_arm,
                    arrow_arm,
                    prod_arm,
                    exist_arm,
                }
            }
            Term::IfLeft {
                x,
                scrut,
                left,
                right,
            } => {
                let scrut = self.value(scrut);
                let sub = self.enter_val_binder(*x);
                Term::IfLeft {
                    x: *x,
                    scrut,
                    left: sub.term(left).id(),
                    right: sub.term(right).id(),
                }
            }
            Term::Set { dst, src, body } => Term::Set {
                dst: self.value(dst),
                src: self.value(src),
                body: self.term(body).id(),
            },
            Term::Widen {
                x,
                from,
                to,
                tag,
                v,
                body,
            } => {
                let from = self.region(from);
                let to = self.region(to);
                let tag = self.tag(tag);
                let v = self.value(v);
                let sub = self.enter_val_binder(*x);
                Term::Widen {
                    x: *x,
                    from,
                    to,
                    tag,
                    v,
                    body: sub.term(body).id(),
                }
            }
            Term::IfReg { r1, r2, eq, ne } => Term::IfReg {
                r1: self.region(r1),
                r2: self.region(r2),
                eq: self.term(eq).id(),
                ne: self.term(ne).id(),
            },
            Term::If0 {
                scrut,
                zero,
                nonzero,
            } => Term::If0 {
                scrut: self.value(scrut),
                zero: self.term(zero).id(),
                nonzero: self.term(nonzero).id(),
            },
        }
    }
}

/// Binder-pairing environment extended with the value namespace.
#[derive(Default)]
struct TermAlphaEnv {
    tys: AlphaEnv,
    vals: Vec<(Symbol, Symbol)>,
}

fn value_eq_env(a: &Value, b: &Value, env: &mut TermAlphaEnv) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Var(x), Value::Var(y)) => var_eq(*x, *y, &env.vals),
        (Value::Addr(n1, l1), Value::Addr(n2, l2)) => n1 == n2 && l1 == l2,
        (Value::Pair(a1, a2), Value::Pair(b1, b2)) => {
            value_eq_env(a1, b1, env) && value_eq_env(a2, b2, env)
        }
        (
            Value::PackTag {
                tvar: t1,
                kind: k1,
                tag: g1,
                val: v1,
                body_ty: s1,
            },
            Value::PackTag {
                tvar: t2,
                kind: k2,
                tag: g2,
                val: v2,
                body_ty: s2,
            },
        ) => {
            if k1 != k2 || !tag_eq_env(g1, g2, &mut env.tys) || !value_eq_env(v1, v2, env) {
                return false;
            }
            env.tys.tags.push((*t1, *t2));
            let r = ty_eq_env(s1, s2, &mut env.tys);
            env.tys.tags.pop();
            r
        }
        (
            Value::PackAlpha {
                avar: a1,
                regions: d1,
                witness: w1,
                val: v1,
                body_ty: s1,
            },
            Value::PackAlpha {
                avar: a2,
                regions: d2,
                witness: w2,
                val: v2,
                body_ty: s2,
            },
        ) => {
            if !region_set_eq(d1, d2, &env.tys)
                || !ty_eq_env(w1, w2, &mut env.tys)
                || !value_eq_env(v1, v2, env)
            {
                return false;
            }
            env.tys.alphas.push((*a1, *a2));
            let r = ty_eq_env(s1, s2, &mut env.tys);
            env.tys.alphas.pop();
            r
        }
        (
            Value::PackRgn {
                rvar: r1,
                bound: d1,
                witness: w1,
                val: v1,
                body_ty: s1,
            },
            Value::PackRgn {
                rvar: r2,
                bound: d2,
                witness: w2,
                val: v2,
                body_ty: s2,
            },
        ) => {
            if !region_set_eq(d1, d2, &env.tys)
                || !region_eq(w1, w2, &env.tys)
                || !value_eq_env(v1, v2, env)
            {
                return false;
            }
            env.tys.rgns.push((*r1, *r2));
            let r = ty_eq_env(s1, s2, &mut env.tys);
            env.tys.rgns.pop();
            r
        }
        (Value::TagApp(f1, g1, d1), Value::TagApp(f2, g2, d2)) => {
            value_eq_env(f1, f2, env)
                && g1.len() == g2.len()
                && d1.len() == d2.len()
                && g1
                    .iter()
                    .zip(g2.iter())
                    .all(|(x, y)| tag_eq_env(x, y, &mut env.tys))
                && d1
                    .iter()
                    .zip(d2.iter())
                    .all(|(x, y)| region_eq(x, y, &env.tys))
        }
        (Value::Code(d1), Value::Code(d2)) => code_def_eq_env(d1, d2, env),
        (Value::Inl(x), Value::Inl(y)) | (Value::Inr(x), Value::Inr(y)) => value_eq_env(x, y, env),
        _ => false,
    }
}

fn op_eq_env(a: &Op, b: &Op, env: &mut TermAlphaEnv) -> bool {
    match (a, b) {
        (Op::Val(x), Op::Val(y)) | (Op::Get(x), Op::Get(y)) | (Op::Strip(x), Op::Strip(y)) => {
            value_eq_env(x, y, env)
        }
        (Op::Proj(i, x), Op::Proj(j, y)) => i == j && value_eq_env(x, y, env),
        (Op::Put(r1, x), Op::Put(r2, y)) => region_eq(r1, r2, &env.tys) && value_eq_env(x, y, env),
        (Op::Prim(p, a1, a2), Op::Prim(q, b1, b2)) => {
            p == q && value_eq_env(a1, b1, env) && value_eq_env(a2, b2, env)
        }
        _ => false,
    }
}

fn code_def_eq_env(a: &CodeDef, b: &CodeDef, env: &mut TermAlphaEnv) -> bool {
    // Names are labels resolved through `cd` at application time, so they
    // are semantically significant and must match exactly.
    if a.name != b.name
        || a.tvars.len() != b.tvars.len()
        || a.rvars.len() != b.rvars.len()
        || a.params.len() != b.params.len()
        || a.tvars
            .iter()
            .zip(b.tvars.iter())
            .any(|((_, k1), (_, k2))| k1 != k2)
    {
        return false;
    }
    let nt = a.tvars.len();
    let nr = a.rvars.len();
    let nx = a.params.len();
    for ((t1, _), (t2, _)) in a.tvars.iter().zip(b.tvars.iter()) {
        env.tys.tags.push((*t1, *t2));
    }
    for (r1, r2) in a.rvars.iter().zip(b.rvars.iter()) {
        env.tys.rgns.push((*r1, *r2));
    }
    let mut ok = a
        .params
        .iter()
        .zip(b.params.iter())
        .all(|((_, s1), (_, s2))| ty_eq_env(s1, s2, &mut env.tys));
    for ((x1, _), (x2, _)) in a.params.iter().zip(b.params.iter()) {
        env.vals.push((*x1, *x2));
    }
    ok = ok && term_eq_env(&a.body, &b.body, env);
    env.vals.truncate(env.vals.len() - nx);
    env.tys.rgns.truncate(env.tys.rgns.len() - nr);
    env.tys.tags.truncate(env.tys.tags.len() - nt);
    ok
}

fn term_eq_env(a: &Term, b: &Term, env: &mut TermAlphaEnv) -> bool {
    match (a, b) {
        (
            Term::App {
                f: f1,
                tags: g1,
                regions: d1,
                args: a1,
            },
            Term::App {
                f: f2,
                tags: g2,
                regions: d2,
                args: a2,
            },
        ) => {
            value_eq_env(f1, f2, env)
                && g1.len() == g2.len()
                && d1.len() == d2.len()
                && a1.len() == a2.len()
                && g1
                    .iter()
                    .zip(g2.iter())
                    .all(|(x, y)| tag_eq_env(x, y, &mut env.tys))
                && d1
                    .iter()
                    .zip(d2.iter())
                    .all(|(x, y)| region_eq(x, y, &env.tys))
                && a1
                    .iter()
                    .zip(a2.iter())
                    .all(|(x, y)| value_eq_env(x, y, env))
        }
        (
            Term::Let {
                x: x1,
                op: o1,
                body: b1,
            },
            Term::Let {
                x: x2,
                op: o2,
                body: b2,
            },
        ) => {
            if !op_eq_env(o1, o2, env) {
                return false;
            }
            env.vals.push((*x1, *x2));
            let r = term_eq_env(b1, b2, env);
            env.vals.pop();
            r
        }
        (Term::Halt(x), Term::Halt(y)) => value_eq_env(x, y, env),
        (
            Term::IfGc {
                rho: r1,
                full: f1,
                cont: c1,
            },
            Term::IfGc {
                rho: r2,
                full: f2,
                cont: c2,
            },
        ) => region_eq(r1, r2, &env.tys) && term_eq_env(f1, f2, env) && term_eq_env(c1, c2, env),
        (
            Term::OpenTag {
                pkg: p1,
                tvar: t1,
                x: x1,
                body: b1,
            },
            Term::OpenTag {
                pkg: p2,
                tvar: t2,
                x: x2,
                body: b2,
            },
        ) => {
            if !value_eq_env(p1, p2, env) {
                return false;
            }
            env.tys.tags.push((*t1, *t2));
            env.vals.push((*x1, *x2));
            let r = term_eq_env(b1, b2, env);
            env.vals.pop();
            env.tys.tags.pop();
            r
        }
        (
            Term::OpenAlpha {
                pkg: p1,
                avar: a1,
                x: x1,
                body: b1,
            },
            Term::OpenAlpha {
                pkg: p2,
                avar: a2,
                x: x2,
                body: b2,
            },
        ) => {
            if !value_eq_env(p1, p2, env) {
                return false;
            }
            env.tys.alphas.push((*a1, *a2));
            env.vals.push((*x1, *x2));
            let r = term_eq_env(b1, b2, env);
            env.vals.pop();
            env.tys.alphas.pop();
            r
        }
        (
            Term::OpenRgn {
                pkg: p1,
                rvar: r1,
                x: x1,
                body: b1,
            },
            Term::OpenRgn {
                pkg: p2,
                rvar: r2,
                x: x2,
                body: b2,
            },
        ) => {
            if !value_eq_env(p1, p2, env) {
                return false;
            }
            env.tys.rgns.push((*r1, *r2));
            env.vals.push((*x1, *x2));
            let r = term_eq_env(b1, b2, env);
            env.vals.pop();
            env.tys.rgns.pop();
            r
        }
        (Term::LetRegion { rvar: r1, body: b1 }, Term::LetRegion { rvar: r2, body: b2 }) => {
            env.tys.rgns.push((*r1, *r2));
            let r = term_eq_env(b1, b2, env);
            env.tys.rgns.pop();
            r
        }
        (
            Term::Only {
                regions: d1,
                body: b1,
            },
            Term::Only {
                regions: d2,
                body: b2,
            },
        ) => region_set_eq(d1, d2, &env.tys) && term_eq_env(b1, b2, env),
        (
            Term::Typecase {
                tag: g1,
                int_arm: i1,
                arrow_arm: l1,
                prod_arm: (p1a, p1b, p1e),
                exist_arm: (e1t, e1e),
            },
            Term::Typecase {
                tag: g2,
                int_arm: i2,
                arrow_arm: l2,
                prod_arm: (p2a, p2b, p2e),
                exist_arm: (e2t, e2e),
            },
        ) => {
            if !tag_eq_env(g1, g2, &mut env.tys)
                || !term_eq_env(i1, i2, env)
                || !term_eq_env(l1, l2, env)
            {
                return false;
            }
            env.tys.tags.push((*p1a, *p2a));
            env.tys.tags.push((*p1b, *p2b));
            let prod_ok = term_eq_env(p1e, p2e, env);
            env.tys.tags.pop();
            env.tys.tags.pop();
            if !prod_ok {
                return false;
            }
            env.tys.tags.push((*e1t, *e2t));
            let exist_ok = term_eq_env(e1e, e2e, env);
            env.tys.tags.pop();
            exist_ok
        }
        (
            Term::IfLeft {
                x: x1,
                scrut: s1,
                left: l1,
                right: r1,
            },
            Term::IfLeft {
                x: x2,
                scrut: s2,
                left: l2,
                right: r2,
            },
        ) => {
            if !value_eq_env(s1, s2, env) {
                return false;
            }
            env.vals.push((*x1, *x2));
            let r = term_eq_env(l1, l2, env) && term_eq_env(r1, r2, env);
            env.vals.pop();
            r
        }
        (
            Term::Set {
                dst: d1,
                src: s1,
                body: b1,
            },
            Term::Set {
                dst: d2,
                src: s2,
                body: b2,
            },
        ) => value_eq_env(d1, d2, env) && value_eq_env(s1, s2, env) && term_eq_env(b1, b2, env),
        (
            Term::Widen {
                x: x1,
                from: f1,
                to: t1,
                tag: g1,
                v: v1,
                body: b1,
            },
            Term::Widen {
                x: x2,
                from: f2,
                to: t2,
                tag: g2,
                v: v2,
                body: b2,
            },
        ) => {
            if !region_eq(f1, f2, &env.tys)
                || !region_eq(t1, t2, &env.tys)
                || !tag_eq_env(g1, g2, &mut env.tys)
                || !value_eq_env(v1, v2, env)
            {
                return false;
            }
            env.vals.push((*x1, *x2));
            let r = term_eq_env(b1, b2, env);
            env.vals.pop();
            r
        }
        (
            Term::IfReg {
                r1: a1,
                r2: a2,
                eq: e1,
                ne: n1,
            },
            Term::IfReg {
                r1: b1,
                r2: b2,
                eq: e2,
                ne: n2,
            },
        ) => {
            region_eq(a1, b1, &env.tys)
                && region_eq(a2, b2, &env.tys)
                && term_eq_env(e1, e2, env)
                && term_eq_env(n1, n2, env)
        }
        (
            Term::If0 {
                scrut: s1,
                zero: z1,
                nonzero: n1,
            },
            Term::If0 {
                scrut: s2,
                zero: z2,
                nonzero: n2,
            },
        ) => value_eq_env(s1, s2, env) && term_eq_env(z1, z2, env) && term_eq_env(n1, n2, env),
        _ => false,
    }
}

/// α-equivalence of values by explicit binder pairing across all four
/// namespaces.
pub fn value_alpha_eq(a: &Value, b: &Value) -> bool {
    value_eq_env(a, b, &mut TermAlphaEnv::default())
}

/// α-equivalence of terms by explicit binder pairing across all four
/// namespaces (region sets compare as sets, like [`ty_alpha_eq`]).
pub fn term_alpha_eq(a: &Term, b: &Term) -> bool {
    term_eq_env(a, b, &mut TermAlphaEnv::default())
}
