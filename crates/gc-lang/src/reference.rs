//! Reference (pre-interning) normalization and α-equivalence.
//!
//! These are the straightforward structural-recursion implementations that
//! [`crate::tags`] and [`crate::moper`] used before tags and types were
//! hash-consed: no memo tables, no canonical forms, no free-variable
//! fingerprints — every call walks the whole tree and α-compares with an
//! explicit binder-pairing environment.
//!
//! They are kept (and exported) for one purpose: the differential suite in
//! `tests/intern_agreement.rs` property-checks the memoized, id-keyed fast
//! paths against these slow-but-obviously-correct ports. Nothing in the
//! crate's own pipeline calls them.

use ps_ir::Symbol;

use crate::subst::Subst;
use crate::syntax::{Dialect, Kind, Region, Tag, Ty};

// ----- tags --------------------------------------------------------------

/// [`crate::tags::normalize`] by direct normal-order reduction, no memo.
pub fn normalize_tag(tau: &Tag) -> Tag {
    normalize_tag_counted(tau, &mut 0)
}

/// Like [`normalize_tag`] but counts β-steps, mirroring
/// [`crate::tags::normalize_counted`].
pub fn normalize_tag_counted(tau: &Tag, steps: &mut u64) -> Tag {
    match tau {
        Tag::Var(_) | Tag::Int | Tag::AnyArrow(_) => tau.clone(),
        Tag::Prod(a, b) => Tag::prod(
            normalize_tag_counted(a, steps),
            normalize_tag_counted(b, steps),
        ),
        Tag::Arrow(args) => Tag::arrow(
            args.iter()
                .map(|a| normalize_tag_counted(a, steps))
                .collect::<Vec<_>>(),
        ),
        Tag::Exist(t, body) => Tag::exist(*t, normalize_tag_counted(body, steps)),
        Tag::Lam(t, body) => Tag::lam(*t, normalize_tag_counted(body, steps)),
        Tag::App(f, a) => {
            let f = normalize_tag_counted(f, steps);
            match f {
                Tag::Lam(t, body) => {
                    *steps += 1;
                    // Normal order: substitute the *unnormalized* argument.
                    let reduced = Subst::one_tag(t, a.node().clone()).tag(body.node());
                    normalize_tag_counted(&reduced, steps)
                }
                _ => Tag::app(f, normalize_tag_counted(a, steps)),
            }
        }
    }
}

fn var_eq(x: Symbol, y: Symbol, env: &[(Symbol, Symbol)]) -> bool {
    for &(a, b) in env.iter().rev() {
        if a == x || b == y {
            return a == x && b == y;
        }
    }
    x == y
}

/// α-equivalence of tags by explicit binder pairing.
pub fn tag_alpha_eq(a: &Tag, b: &Tag) -> bool {
    fn go(a: &Tag, b: &Tag, env: &mut Vec<(Symbol, Symbol)>) -> bool {
        match (a, b) {
            (Tag::Var(x), Tag::Var(y)) | (Tag::AnyArrow(x), Tag::AnyArrow(y)) => {
                var_eq(*x, *y, env)
            }
            (Tag::Int, Tag::Int) => true,
            (Tag::Prod(a1, a2), Tag::Prod(b1, b2)) | (Tag::App(a1, a2), Tag::App(b1, b2)) => {
                go(a1, b1, env) && go(a2, b2, env)
            }
            (Tag::Arrow(xs), Tag::Arrow(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| go(x, y, env))
            }
            (Tag::Exist(x, bx), Tag::Exist(y, by)) | (Tag::Lam(x, bx), Tag::Lam(y, by)) => {
                env.push((*x, *y));
                let r = go(bx, by, env);
                env.pop();
                r
            }
            _ => false,
        }
    }
    go(a, b, &mut Vec::new())
}

/// Tag equality: reference-normalize both sides, then α-compare.
pub fn tag_eq(a: &Tag, b: &Tag) -> bool {
    tag_alpha_eq(&normalize_tag(a), &normalize_tag(b))
}

// ----- types -------------------------------------------------------------

fn r_m() -> Symbol {
    Symbol::intern("r!m")
}
fn ry_m() -> Symbol {
    Symbol::intern("ry!m")
}
fn ro_m() -> Symbol {
    Symbol::intern("ro!m")
}

/// Deduplicated region set, preserving first-occurrence order (the
/// pre-interning [`crate::moper::region_set`] behavior).
fn region_set(rs: &[Region]) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::with_capacity(rs.len());
    for r in rs {
        if !out.contains(r) {
            out.push(*r);
        }
    }
    out
}

fn expand_m(dialect: Dialect, rho: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(dialect, args.iter().map(|a| a.node().clone()))),
        Tag::Prod(a, b) => {
            let inner = Ty::prod(Ty::m(rho, a.node().clone()), Ty::m(rho, b.node().clone()));
            Some(match dialect {
                Dialect::Basic | Dialect::Generational => inner.at(rho),
                Dialect::Forwarding => Ty::Left(inner.id()).at(rho),
            })
        }
        Tag::Exist(t, body) => {
            let inner = Ty::exist_tag(*t, Kind::Omega, Ty::m(rho, body.node().clone()));
            Some(match dialect {
                Dialect::Basic | Dialect::Generational => inner.at(rho),
                Dialect::Forwarding => Ty::Left(inner.id()).at(rho),
            })
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

fn code_rep(dialect: Dialect, args: impl IntoIterator<Item = Tag>) -> Ty {
    match dialect {
        Dialect::Basic | Dialect::Forwarding => {
            let r = r_m();
            Ty::code(
                [],
                [r],
                args.into_iter()
                    .map(|a| Ty::m(Region::Var(r), a))
                    .collect::<Vec<_>>(),
            )
            .at(Region::cd())
        }
        Dialect::Generational => {
            let ry = ry_m();
            let ro = ro_m();
            Ty::code(
                [],
                [ry, ro],
                args.into_iter()
                    .map(|a| Ty::mgen(Region::Var(ry), Region::Var(ro), a))
                    .collect::<Vec<_>>(),
            )
            .at(Region::cd())
        }
    }
}

fn expand_c(from: Region, to: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(
            Dialect::Forwarding,
            args.iter().map(|a| a.node().clone()),
        )),
        Tag::Prod(a, b) => {
            let left = Ty::prod(
                Ty::c(from, to, a.node().clone()),
                Ty::c(from, to, b.node().clone()),
            );
            let right = Ty::m(to, tag.clone());
            Some(Ty::sum(left, right).at(from))
        }
        Tag::Exist(t, body) => {
            let left = Ty::exist_tag(*t, Kind::Omega, Ty::c(from, to, body.node().clone()));
            let right = Ty::m(to, tag.clone());
            Some(Ty::sum(left, right).at(from))
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

fn expand_mgen(young: Region, old: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(
            Dialect::Generational,
            args.iter().map(|a| a.node().clone()),
        )),
        Tag::Prod(a, b) => {
            let r = r_m();
            let body = Ty::prod(
                Ty::mgen(Region::Var(r), old, a.node().clone()),
                Ty::mgen(Region::Var(r), old, b.node().clone()),
            );
            Some(Ty::exist_rgn(r, region_set(&[young, old]), body))
        }
        Tag::Exist(t, body) => {
            let r = r_m();
            let inner = Ty::exist_tag(
                *t,
                Kind::Omega,
                Ty::mgen(Region::Var(r), old, body.node().clone()),
            );
            Some(Ty::exist_rgn(r, region_set(&[young, old]), inner))
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

/// [`crate::moper::normalize_ty`] by direct structural recursion, no memo.
pub fn normalize_ty(sigma: &Ty, dialect: Dialect) -> Ty {
    match sigma {
        Ty::Int | Ty::Alpha(_) => sigma.clone(),
        Ty::Prod(a, b) => Ty::prod(normalize_ty(a, dialect), normalize_ty(b, dialect)),
        Ty::Sum(a, b) => Ty::sum(normalize_ty(a, dialect), normalize_ty(b, dialect)),
        Ty::Left(a) => Ty::Left(normalize_ty(a, dialect).id()),
        Ty::Right(a) => Ty::Right(normalize_ty(a, dialect).id()),
        Ty::Code { tvars, rvars, args } => Ty::code(
            tvars.iter().copied(),
            rvars.iter().copied(),
            args.iter()
                .map(|a| normalize_ty(a, dialect))
                .collect::<Vec<_>>(),
        ),
        Ty::ExistTag { tvar, kind, body } => {
            Ty::exist_tag(*tvar, *kind, normalize_ty(body, dialect))
        }
        Ty::At(inner, rho) => normalize_ty(inner, dialect).at(*rho),
        Ty::M(rho, tag) => {
            let nf = normalize_tag(tag);
            if let Tag::AnyArrow(_) = nf {
                return Ty::m(Region::cd(), nf);
            }
            match expand_m(dialect, *rho, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::m(*rho, nf),
            }
        }
        Ty::C(from, to, tag) => {
            let nf = normalize_tag(tag);
            if let Tag::AnyArrow(_) = nf {
                return Ty::m(Region::cd(), nf);
            }
            match expand_c(*from, *to, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::c(*from, *to, nf),
            }
        }
        Ty::MGen(y, o, tag) => {
            let nf = normalize_tag(tag);
            if let Tag::AnyArrow(_) = nf {
                return Ty::m(Region::cd(), nf);
            }
            match expand_mgen(*y, *o, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::mgen(*y, *o, nf),
            }
        }
        Ty::ExistAlpha {
            avar,
            regions,
            body,
        } => Ty::exist_alpha(*avar, region_set(regions), normalize_ty(body, dialect)),
        Ty::Trans {
            tags: ts,
            regions,
            args,
            rho,
        } => Ty::Trans {
            tags: ts.iter().map(|t| normalize_tag(t).id()).collect(),
            regions: regions.clone(),
            args: args.iter().map(|a| normalize_ty(a, dialect).id()).collect(),
            rho: *rho,
        },
        Ty::ExistRgn { rvar, bound, body } => {
            Ty::exist_rgn(*rvar, region_set(bound), normalize_ty(body, dialect))
        }
    }
}

/// Environment of corresponding binders for type α-comparison.
#[derive(Default)]
struct AlphaEnv {
    tags: Vec<(Symbol, Symbol)>,
    rgns: Vec<(Symbol, Symbol)>,
    alphas: Vec<(Symbol, Symbol)>,
}

fn region_eq(a: &Region, b: &Region, env: &AlphaEnv) -> bool {
    match (a, b) {
        (Region::Var(x), Region::Var(y)) => var_eq(*x, *y, &env.rgns),
        (Region::Name(x), Region::Name(y)) => x == y,
        _ => false,
    }
}

/// Compares two region sets as sets under the α-environment.
fn region_set_eq(a: &[Region], b: &[Region], env: &AlphaEnv) -> bool {
    a.iter().all(|x| b.iter().any(|y| region_eq(x, y, env)))
        && b.iter().all(|y| a.iter().any(|x| region_eq(x, y, env)))
}

fn tag_eq_env(a: &Tag, b: &Tag, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (Tag::Var(x), Tag::Var(y)) | (Tag::AnyArrow(x), Tag::AnyArrow(y)) => {
            var_eq(*x, *y, &env.tags)
        }
        (Tag::Int, Tag::Int) => true,
        (Tag::Prod(a1, a2), Tag::Prod(b1, b2)) | (Tag::App(a1, a2), Tag::App(b1, b2)) => {
            tag_eq_env(a1, b1, env) && tag_eq_env(a2, b2, env)
        }
        (Tag::Arrow(xs), Tag::Arrow(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| tag_eq_env(x, y, env))
        }
        (Tag::Exist(x, bx), Tag::Exist(y, by)) | (Tag::Lam(x, bx), Tag::Lam(y, by)) => {
            env.tags.push((*x, *y));
            let r = tag_eq_env(bx, by, env);
            env.tags.pop();
            r
        }
        _ => false,
    }
}

fn ty_eq_env(a: &Ty, b: &Ty, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (Ty::Int, Ty::Int) => true,
        (Ty::Prod(a1, a2), Ty::Prod(b1, b2)) | (Ty::Sum(a1, a2), Ty::Sum(b1, b2)) => {
            ty_eq_env(a1, b1, env) && ty_eq_env(a2, b2, env)
        }
        (Ty::Left(x), Ty::Left(y)) | (Ty::Right(x), Ty::Right(y)) => ty_eq_env(x, y, env),
        (
            Ty::Code {
                tvars: tv1,
                rvars: rv1,
                args: a1,
            },
            Ty::Code {
                tvars: tv2,
                rvars: rv2,
                args: a2,
            },
        ) => {
            if tv1.len() != tv2.len() || rv1.len() != rv2.len() || a1.len() != a2.len() {
                return false;
            }
            if tv1
                .iter()
                .zip(tv2.iter())
                .any(|((_, k1), (_, k2))| k1 != k2)
            {
                return false;
            }
            let nt = tv1.len();
            let nr = rv1.len();
            for ((t1, _), (t2, _)) in tv1.iter().zip(tv2.iter()) {
                env.tags.push((*t1, *t2));
            }
            for (r1, r2) in rv1.iter().zip(rv2.iter()) {
                env.rgns.push((*r1, *r2));
            }
            let r = a1.iter().zip(a2.iter()).all(|(x, y)| ty_eq_env(x, y, env));
            env.tags.truncate(env.tags.len() - nt);
            env.rgns.truncate(env.rgns.len() - nr);
            r
        }
        (
            Ty::ExistTag {
                tvar: t1,
                kind: k1,
                body: b1,
            },
            Ty::ExistTag {
                tvar: t2,
                kind: k2,
                body: b2,
            },
        ) => {
            if k1 != k2 {
                return false;
            }
            env.tags.push((*t1, *t2));
            let r = ty_eq_env(b1, b2, env);
            env.tags.pop();
            r
        }
        (Ty::At(x, rx), Ty::At(y, ry)) => region_eq(rx, ry, env) && ty_eq_env(x, y, env),
        (Ty::M(r1, t1), Ty::M(r2, t2)) => region_eq(r1, r2, env) && tag_eq_env(t1, t2, env),
        (Ty::C(f1, o1, t1), Ty::C(f2, o2, t2)) => {
            region_eq(f1, f2, env) && region_eq(o1, o2, env) && tag_eq_env(t1, t2, env)
        }
        (Ty::MGen(y1, o1, t1), Ty::MGen(y2, o2, t2)) => {
            region_eq(y1, y2, env) && region_eq(o1, o2, env) && tag_eq_env(t1, t2, env)
        }
        (Ty::Alpha(x), Ty::Alpha(y)) => var_eq(*x, *y, &env.alphas),
        (
            Ty::ExistAlpha {
                avar: a1,
                regions: d1,
                body: b1,
            },
            Ty::ExistAlpha {
                avar: a2,
                regions: d2,
                body: b2,
            },
        ) => {
            if !region_set_eq(d1, d2, env) {
                return false;
            }
            env.alphas.push((*a1, *a2));
            let r = ty_eq_env(b1, b2, env);
            env.alphas.pop();
            r
        }
        (
            Ty::Trans {
                tags: ts1,
                regions: rs1,
                args: a1,
                rho: rho1,
            },
            Ty::Trans {
                tags: ts2,
                regions: rs2,
                args: a2,
                rho: rho2,
            },
        ) => {
            ts1.len() == ts2.len()
                && rs1.len() == rs2.len()
                && a1.len() == a2.len()
                && region_eq(rho1, rho2, env)
                && ts1
                    .iter()
                    .zip(ts2.iter())
                    .all(|(x, y)| tag_eq_env(x, y, env))
                && rs1
                    .iter()
                    .zip(rs2.iter())
                    .all(|(x, y)| region_eq(x, y, env))
                && a1.iter().zip(a2.iter()).all(|(x, y)| ty_eq_env(x, y, env))
        }
        (
            Ty::ExistRgn {
                rvar: r1,
                bound: d1,
                body: b1,
            },
            Ty::ExistRgn {
                rvar: r2,
                bound: d2,
                body: b2,
            },
        ) => {
            if !region_set_eq(d1, d2, env) {
                return false;
            }
            env.rgns.push((*r1, *r2));
            let r = ty_eq_env(b1, b2, env);
            env.rgns.pop();
            r
        }
        _ => false,
    }
}

/// α-equivalence of types by explicit binder pairing (no normalization).
pub fn ty_alpha_eq(a: &Ty, b: &Ty) -> bool {
    ty_eq_env(a, b, &mut AlphaEnv::default())
}

/// Type equality: reference-normalize both sides, then α-compare.
pub fn ty_eq(a: &Ty, b: &Ty, dialect: Dialect) -> bool {
    if a == b {
        return true;
    }
    ty_alpha_eq(&normalize_ty(a, dialect), &normalize_ty(b, dialect))
}
