//! A concrete syntax for λGC, matching [`crate::pretty`]'s output.
//!
//! The grammar follows the paper's notation (`∀[t:Ω][r](σ)→0`, `Mρ(τ)`
//! written `M[ρ](τ)`, `⟨t:Ω = τ, v : σ⟩`, `typecase τ of …`), so that
//! collectors can be written, stored and read back as text; the round-trip
//! `parse ∘ print` is tested on the certified collectors themselves.
//!
//! Two notational deviations from the paper, forced by parsability:
//!
//! * the three `open` forms are keyword-distinguished (`open` for tag
//!   existentials, `openα` for type existentials, `openρ` for region
//!   existentials) — the paper overloads one keyword and disambiguates by
//!   type;
//! * `typecase` arms containing another `typecase` must be parenthesized
//!   (`(… )` is a term).

use std::fmt;

use ps_ir::Symbol;

use crate::syntax::{CodeDef, Kind, Op, PrimOp, Region, RegionName, Tag, Term, Ty, Value, CD};

/// A λGC parse error with a token position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcParseError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for GcParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λGC parse error at token {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for GcParseError {}

type PResult<T> = Result<T, GcParseError>;

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Nu(u32),
    LBrack,
    RBrack,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LAngle,
    RAngle,
    LDblBrack,
    RDblBrack,
    Comma,
    Dot,
    Colon,
    Semi,
    Eq,
    Times,
    Arrow,
    DArrow,
    Forall,
    Exists,
    Lambda,
    MemberOf,
    Omega,
    Plus,
    Minus,
    Assign,
    Pi(u8),
}

fn lex(src: &str) -> PResult<Vec<Tok>> {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    let is_ident = |c: char| c.is_alphanumeric() || matches!(c, '_' | '!' | '%' | '\'');
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '[' => {
                out.push(Tok::LBrack);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBrack);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '⟨' => {
                out.push(Tok::LAngle);
                i += 1;
            }
            '⟩' => {
                out.push(Tok::RAngle);
                i += 1;
            }
            '⟦' => {
                out.push(Tok::LDblBrack);
                i += 1;
            }
            '⟧' => {
                out.push(Tok::RDblBrack);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '×' => {
                out.push(Tok::Times);
                i += 1;
            }
            '→' => {
                out.push(Tok::Arrow);
                i += 1;
            }
            '⇒' => {
                out.push(Tok::DArrow);
                i += 1;
            }
            '∀' => {
                out.push(Tok::Forall);
                i += 1;
            }
            '∃' => {
                out.push(Tok::Exists);
                i += 1;
            }
            'λ' => {
                out.push(Tok::Lambda);
                i += 1;
            }
            '∈' => {
                out.push(Tok::MemberOf);
                i += 1;
            }
            'Ω' => {
                out.push(Tok::Omega);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Times);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Assign);
                    i += 2;
                } else {
                    out.push(Tok::Colon);
                    i += 1;
                }
            }
            'π' => {
                let idx = match chars.get(i + 1) {
                    Some('1') => 1,
                    Some('2') => 2,
                    other => {
                        return Err(GcParseError {
                            pos: out.len(),
                            msg: format!("π must be followed by 1 or 2, found {other:?}"),
                        })
                    }
                };
                out.push(Tok::Pi(idx));
                i += 2;
            }
            'ν' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    // ν with no digits: treat as identifier start.
                    let mut j2 = i;
                    while j2 < chars.len() && is_ident(chars[j2]) {
                        j2 += 1;
                    }
                    out.push(Tok::Ident(chars[i..j2].iter().collect()));
                    i = j2;
                } else {
                    let n: String = chars[start..j].iter().collect();
                    out.push(Tok::Nu(n.parse().map_err(|_| GcParseError {
                        pos: out.len(),
                        msg: format!("region number {n} out of range"),
                    })?));
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Tok::Int(text.parse().map_err(|_| GcParseError {
                    pos: out.len(),
                    msg: format!("integer {text} out of range"),
                })?));
            }
            c if is_ident(c) => {
                let start = i;
                while i < chars.len() && is_ident(chars[i]) {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(GcParseError {
                    pos: out.len(),
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    i: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).cloned();
        self.i += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(GcParseError {
            pos: self.i,
            msg: msg.into(),
        })
    }

    fn expect(&mut self, tok: Tok, what: &str) -> PResult<()> {
        match self.peek() {
            Some(t) if *t == tok => {
                self.i += 1;
                Ok(())
            }
            other => {
                let other = other.cloned();
                self.err(format!("expected {what}, found {other:?}"))
            }
        }
    }

    fn kw(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == word) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn at_kw(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if w == word)
    }

    fn ident(&mut self) -> PResult<Symbol> {
        match self.bump() {
            Some(Tok::Ident(w)) => Ok(Symbol::intern(&w)),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn int(&mut self) -> PResult<i64> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(n),
            Some(Tok::Minus) => match self.bump() {
                Some(Tok::Int(n)) => Ok(-n),
                other => self.err(format!("expected integer after -, found {other:?}")),
            },
            other => self.err(format!("expected integer, found {other:?}")),
        }
    }

    // ---- regions ---------------------------------------------------------

    fn region(&mut self) -> PResult<Region> {
        match self.bump() {
            Some(Tok::Ident(w)) if w == "cd" => Ok(Region::cd()),
            Some(Tok::Ident(w)) => Ok(Region::Var(Symbol::intern(&w))),
            Some(Tok::Nu(n)) => Ok(Region::Name(RegionName(n))),
            other => self.err(format!("expected region, found {other:?}")),
        }
    }

    fn region_set(&mut self) -> PResult<Vec<Region>> {
        self.expect(Tok::LBrace, "{")?;
        let mut out = Vec::new();
        if self.peek() != Some(&Tok::RBrace) {
            loop {
                out.push(self.region()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBrace, "}")?;
        Ok(out)
    }

    fn kind(&mut self) -> PResult<Kind> {
        self.expect(Tok::Omega, "Ω")?;
        if self.peek() == Some(&Tok::Arrow) && self.peek2() == Some(&Tok::Omega) {
            self.i += 2;
            Ok(Kind::Arrow)
        } else {
            Ok(Kind::Omega)
        }
    }

    // ---- tags --------------------------------------------------------------

    fn tag(&mut self) -> PResult<Tag> {
        let lhs = self.tag_app()?;
        if self.peek() == Some(&Tok::Times) {
            self.i += 1;
            let rhs = self.tag()?;
            Ok(Tag::prod(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn starts_tag_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Ident(_)) | Some(Tok::LParen) | Some(Tok::Exists) | Some(Tok::Lambda)
        )
    }

    fn tag_app(&mut self) -> PResult<Tag> {
        let mut lhs = self.tag_atom()?;
        while self.starts_tag_atom() {
            // Do not swallow keywords that end a tag context.
            if let Some(Tok::Ident(w)) = self.peek() {
                if matches!(
                    w.as_str(),
                    "of" | "at" | "in" | "then" | "else" | "left" | "right"
                ) {
                    break;
                }
            }
            let rhs = self.tag_atom()?;
            lhs = Tag::app(lhs, rhs);
        }
        Ok(lhs)
    }

    fn tag_atom(&mut self) -> PResult<Tag> {
        match self.peek().cloned() {
            Some(Tok::Ident(w)) if w == "Int" => {
                self.i += 1;
                Ok(Tag::Int)
            }
            Some(Tok::Ident(w)) if w == "arrow" => {
                // The internal AnyArrow refinement, printed `arrow(t)`.
                self.i += 1;
                self.expect(Tok::LParen, "(")?;
                let t = self.ident()?;
                self.expect(Tok::RParen, ")")?;
                Ok(Tag::AnyArrow(t))
            }
            Some(Tok::Ident(w)) => {
                self.i += 1;
                Ok(Tag::Var(Symbol::intern(&w)))
            }
            Some(Tok::Exists) => {
                self.i += 1;
                let t = self.ident()?;
                self.expect(Tok::Dot, ".")?;
                Ok(Tag::exist(t, self.tag()?))
            }
            Some(Tok::Lambda) => {
                self.i += 1;
                let t = self.ident()?;
                self.expect(Tok::Dot, ".")?;
                Ok(Tag::lam(t, self.tag()?))
            }
            Some(Tok::LParen) => {
                self.i += 1;
                let mut items = vec![self.tag()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                    items.push(self.tag()?);
                }
                self.expect(Tok::RParen, ")")?;
                if self.peek() == Some(&Tok::Arrow) {
                    self.i += 1;
                    match self.bump() {
                        Some(Tok::Int(0)) => Ok(Tag::arrow(items)),
                        other => self.err(format!("expected 0 after →, found {other:?}")),
                    }
                } else if let [item] = items.as_slice() {
                    Ok(item.clone())
                } else {
                    self.err("tag tuple without → 0")
                }
            }
            other => self.err(format!("expected tag, found {other:?}")),
        }
    }

    // ---- types -------------------------------------------------------------

    fn ty(&mut self) -> PResult<Ty> {
        let mut lhs = self.ty_prod()?;
        while self.at_kw("at") {
            self.i += 1;
            let rho = self.region()?;
            lhs = lhs.at(rho);
        }
        Ok(lhs)
    }

    fn ty_prod(&mut self) -> PResult<Ty> {
        let lhs = self.ty_pre()?;
        if self.peek() == Some(&Tok::Times) {
            self.i += 1;
            let rhs = self.ty_prod()?;
            Ok(Ty::prod(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn ty_pre(&mut self) -> PResult<Ty> {
        if self.at_kw("left") {
            self.i += 1;
            let a = self.ty_atom()?;
            if self.peek() == Some(&Tok::Plus) {
                self.i += 1;
                if !self.kw("right") {
                    return self.err("expected `right` after +");
                }
                let b = self.ty_atom()?;
                return Ok(Ty::sum(a, b));
            }
            return Ok(Ty::Left(a.id()));
        }
        if self.at_kw("right") {
            self.i += 1;
            let a = self.ty_atom()?;
            return Ok(Ty::Right(a.id()));
        }
        self.ty_atom()
    }

    fn ty_atom(&mut self) -> PResult<Ty> {
        match self.peek().cloned() {
            Some(Tok::Ident(w)) if w == "int" => {
                self.i += 1;
                Ok(Ty::Int)
            }
            Some(Tok::Ident(w)) if w == "M" || w == "C" => {
                self.i += 1;
                self.expect(Tok::LBrack, "[")?;
                let r1 = self.region()?;
                let r2 = if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                    Some(self.region()?)
                } else {
                    None
                };
                self.expect(Tok::RBrack, "]")?;
                self.expect(Tok::LParen, "(")?;
                let tag = self.tag()?;
                self.expect(Tok::RParen, ")")?;
                match (w.as_str(), r2) {
                    ("M", None) => Ok(Ty::m(r1, tag)),
                    ("M", Some(r2)) => Ok(Ty::mgen(r1, r2, tag)),
                    ("C", Some(r2)) => Ok(Ty::c(r1, r2, tag)),
                    ("C", None) => self.err("C needs two regions"),
                    _ => unreachable!(),
                }
            }
            Some(Tok::Ident(w)) => {
                self.i += 1;
                Ok(Ty::Alpha(Symbol::intern(&w)))
            }
            Some(Tok::Forall) => {
                self.i += 1;
                match self.peek() {
                    Some(Tok::LBrack) => {
                        // ∀[t:κ,…][r,…](σ,…) → 0
                        self.i += 1;
                        let mut tvars = Vec::new();
                        if self.peek() != Some(&Tok::RBrack) {
                            loop {
                                let t = self.ident()?;
                                self.expect(Tok::Colon, ":")?;
                                let k = self.kind()?;
                                tvars.push((t, k));
                                if self.peek() == Some(&Tok::Comma) {
                                    self.i += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RBrack, "]")?;
                        let rvars = self.rvar_list()?;
                        let args = self.ty_list()?;
                        self.expect(Tok::Arrow, "→")?;
                        match self.bump() {
                            Some(Tok::Int(0)) => Ok(Ty::code(tvars, rvars, args)),
                            other => self.err(format!("expected 0, found {other:?}")),
                        }
                    }
                    Some(Tok::LDblBrack) => {
                        // ∀⟦τ,…⟧[ρ,…](σ,…) →ρ 0
                        self.i += 1;
                        let mut tags = Vec::new();
                        if self.peek() != Some(&Tok::RDblBrack) {
                            loop {
                                tags.push(self.tag()?);
                                if self.peek() == Some(&Tok::Comma) {
                                    self.i += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RDblBrack, "⟧")?;
                        self.expect(Tok::LBrack, "[")?;
                        let mut regions = Vec::new();
                        if self.peek() != Some(&Tok::RBrack) {
                            loop {
                                regions.push(self.region()?);
                                if self.peek() == Some(&Tok::Comma) {
                                    self.i += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RBrack, "]")?;
                        let args = self.ty_list()?;
                        self.expect(Tok::Arrow, "→")?;
                        let rho = self.region()?;
                        match self.bump() {
                            Some(Tok::Int(0)) => Ok(Ty::Trans {
                                tags: tags.iter().map(|t| t.id()).collect(),
                                regions: regions.into(),
                                args: args.iter().map(|a| a.id()).collect(),
                                rho,
                            }),
                            other => self.err(format!("expected 0, found {other:?}")),
                        }
                    }
                    other => {
                        let other = other.cloned();
                        self.err(format!("expected [ or ⟦ after ∀, found {other:?}"))
                    }
                }
            }
            Some(Tok::Exists) => {
                self.i += 1;
                let v = self.ident()?;
                match self.peek() {
                    Some(Tok::Colon) => {
                        self.i += 1;
                        if self.peek() == Some(&Tok::LBrace) {
                            // ∃α:{Δ}.σ
                            let regions = self.region_set()?;
                            self.expect(Tok::Dot, ".")?;
                            // ∃-bodies print at low precedence: products and
                            // `at` extend to the right without parentheses.
                            Ok(Ty::exist_alpha(v, regions, self.ty()?))
                        } else {
                            // ∃t:κ.σ
                            let k = self.kind()?;
                            self.expect(Tok::Dot, ".")?;
                            Ok(Ty::exist_tag(v, k, self.ty()?))
                        }
                    }
                    Some(Tok::MemberOf) => {
                        // ∃r∈{Δ}.(σ at r)
                        self.i += 1;
                        let bound = self.region_set()?;
                        self.expect(Tok::Dot, ".")?;
                        self.expect(Tok::LParen, "(")?;
                        let body = self.ty()?;
                        // The printer renders the body as `σ at r`; `at r`
                        // was consumed by `ty`, so strip it back off.
                        let (body, at) = match body {
                            Ty::At(inner, Region::Var(r)) if r == v => ((*inner).clone(), true),
                            other => (other, false),
                        };
                        if !at {
                            return self.err("region existential body must end in `at <binder>`");
                        }
                        self.expect(Tok::RParen, ")")?;
                        Ok(Ty::exist_rgn(v, bound, body))
                    }
                    other => {
                        let other = other.cloned();
                        self.err(format!("expected : or ∈ after ∃{v}, found {other:?}"))
                    }
                }
            }
            Some(Tok::LParen) => {
                self.i += 1;
                let t = self.ty()?;
                self.expect(Tok::RParen, ")")?;
                Ok(t)
            }
            other => self.err(format!("expected type, found {other:?}")),
        }
    }

    fn rvar_list(&mut self) -> PResult<Vec<Symbol>> {
        self.expect(Tok::LBrack, "[")?;
        let mut out = Vec::new();
        if self.peek() != Some(&Tok::RBrack) {
            loop {
                out.push(self.ident()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBrack, "]")?;
        Ok(out)
    }

    fn ty_list(&mut self) -> PResult<Vec<Ty>> {
        self.expect(Tok::LParen, "(")?;
        let mut out = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                out.push(self.ty()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, ")")?;
        Ok(out)
    }

    // ---- values ------------------------------------------------------------

    fn value(&mut self) -> PResult<Value> {
        if self.at_kw("inl") {
            self.i += 1;
            return Ok(Value::inl(self.value()?));
        }
        if self.at_kw("inr") {
            self.i += 1;
            return Ok(Value::inr(self.value()?));
        }
        let mut v = self.value_atom()?;
        while self.peek() == Some(&Tok::LDblBrack) {
            self.i += 1;
            let mut tags = Vec::new();
            if self.peek() != Some(&Tok::Semi) {
                loop {
                    tags.push(self.tag()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.i += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::Semi, ";")?;
            let mut regions = Vec::new();
            if self.peek() != Some(&Tok::RDblBrack) {
                loop {
                    regions.push(self.region()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.i += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RDblBrack, "⟧")?;
            v = Value::tag_app(v, tags, regions);
        }
        Ok(v)
    }

    fn value_atom(&mut self) -> PResult<Value> {
        match self.peek().cloned() {
            Some(Tok::Int(_)) | Some(Tok::Minus) => Ok(Value::Int(self.int()?)),
            Some(Tok::Nu(n)) => {
                self.i += 1;
                self.expect(Tok::Dot, ".")?;
                let loc = self.int()?;
                Ok(Value::Addr(RegionName(n), loc as u32))
            }
            Some(Tok::Ident(w)) if w == "cd" && self.peek2() == Some(&Tok::Dot) => {
                self.i += 2;
                let loc = self.int()?;
                Ok(Value::Addr(CD, loc as u32))
            }
            Some(Tok::Ident(w)) => {
                self.i += 1;
                Ok(Value::Var(Symbol::intern(&w)))
            }
            Some(Tok::LParen) => {
                self.i += 1;
                let a = self.value()?;
                self.expect(Tok::Comma, ",")?;
                let b = self.value()?;
                self.expect(Tok::RParen, ")")?;
                Ok(Value::pair(a, b))
            }
            Some(Tok::LAngle) => {
                self.i += 1;
                let v = self.ident()?;
                match self.peek() {
                    Some(Tok::Colon) => {
                        self.i += 1;
                        if self.peek() == Some(&Tok::LBrace) {
                            // ⟨α:{Δ} = σ, v : σ⟩
                            let regions = self.region_set()?;
                            self.expect(Tok::Eq, "=")?;
                            let witness = self.ty()?;
                            self.expect(Tok::Comma, ",")?;
                            let val = self.value()?;
                            self.expect(Tok::Colon, ":")?;
                            let body_ty = self.ty()?;
                            self.expect(Tok::RAngle, "⟩")?;
                            Ok(Value::PackAlpha {
                                avar: v,
                                regions: regions.into(),
                                witness,
                                val: val.id(),
                                body_ty,
                            })
                        } else {
                            // ⟨t:κ = τ, v : σ⟩
                            let kind = self.kind()?;
                            self.expect(Tok::Eq, "=")?;
                            let tag = self.tag()?;
                            self.expect(Tok::Comma, ",")?;
                            let val = self.value()?;
                            self.expect(Tok::Colon, ":")?;
                            let body_ty = self.ty()?;
                            self.expect(Tok::RAngle, "⟩")?;
                            Ok(Value::PackTag {
                                tvar: v,
                                kind,
                                tag,
                                val: val.id(),
                                body_ty,
                            })
                        }
                    }
                    Some(Tok::MemberOf) => {
                        // ⟨r∈{Δ} = ρ, v : σ⟩
                        self.i += 1;
                        let bound = self.region_set()?;
                        self.expect(Tok::Eq, "=")?;
                        let witness = self.region()?;
                        self.expect(Tok::Comma, ",")?;
                        let val = self.value()?;
                        self.expect(Tok::Colon, ":")?;
                        let body_ty = self.ty()?;
                        self.expect(Tok::RAngle, "⟩")?;
                        Ok(Value::PackRgn {
                            rvar: v,
                            bound: bound.into(),
                            witness,
                            val: val.id(),
                            body_ty,
                        })
                    }
                    other => {
                        let other = other.cloned();
                        self.err(format!("expected : or ∈ in package, found {other:?}"))
                    }
                }
            }
            other => self.err(format!("expected value, found {other:?}")),
        }
    }

    // ---- operations / terms -------------------------------------------------

    fn op(&mut self) -> PResult<Op> {
        if let Some(Tok::Pi(i)) = self.peek() {
            let i = *i;
            self.i += 1;
            return Ok(Op::Proj(i, self.value()?));
        }
        if self.at_kw("put") {
            self.i += 1;
            self.expect(Tok::LBrack, "[")?;
            let rho = self.region()?;
            self.expect(Tok::RBrack, "]")?;
            return Ok(Op::Put(rho, self.value()?));
        }
        if self.at_kw("get") {
            self.i += 1;
            return Ok(Op::Get(self.value()?));
        }
        if self.at_kw("strip") {
            self.i += 1;
            return Ok(Op::Strip(self.value()?));
        }
        let a = self.value()?;
        let prim = match self.peek() {
            Some(Tok::Plus) => Some(PrimOp::Add),
            Some(Tok::Minus) => Some(PrimOp::Sub),
            Some(Tok::Times) => Some(PrimOp::Mul),
            _ => None,
        };
        if let Some(p) = prim {
            self.i += 1;
            let b = self.value()?;
            Ok(Op::Prim(p, a, b))
        } else {
            Ok(Op::Val(a))
        }
    }

    fn term(&mut self) -> PResult<Term> {
        if self.at_kw("let") {
            self.i += 1;
            if self.at_kw("region") {
                self.i += 1;
                let r = self.ident()?;
                if !self.kw("in") {
                    return self.err("expected in");
                }
                return Ok(Term::LetRegion {
                    rvar: r,
                    body: self.term()?.id(),
                });
            }
            let x = self.ident()?;
            self.expect(Tok::Eq, "=")?;
            if self.at_kw("widen") {
                self.i += 1;
                self.expect(Tok::LBrack, "[")?;
                let from = self.region()?;
                self.expect(Tok::Arrow, "→")?;
                let to = self.region()?;
                self.expect(Tok::RBrack, "]")?;
                self.expect(Tok::LBrack, "[")?;
                let tag = self.tag()?;
                self.expect(Tok::RBrack, "]")?;
                self.expect(Tok::LParen, "(")?;
                let v = self.value()?;
                self.expect(Tok::RParen, ")")?;
                if !self.kw("in") {
                    return self.err("expected in");
                }
                return Ok(Term::Widen {
                    x,
                    from,
                    to,
                    tag,
                    v,
                    body: self.term()?.id(),
                });
            }
            let op = self.op()?;
            if !self.kw("in") {
                return self.err("expected in");
            }
            return Ok(Term::let_(x, op, self.term()?));
        }
        if self.at_kw("halt") {
            self.i += 1;
            return Ok(Term::Halt(self.value()?));
        }
        if self.at_kw("ifgc") {
            self.i += 1;
            let rho = self.region()?;
            self.expect(Tok::LParen, "(")?;
            let full = self.term()?;
            self.expect(Tok::RParen, ")")?;
            let cont = self.term()?;
            return Ok(Term::IfGc {
                rho,
                full: full.id(),
                cont: cont.id(),
            });
        }
        if self.at_kw("only") {
            self.i += 1;
            let regions = self.region_set()?;
            if !self.kw("in") {
                return self.err("expected in");
            }
            return Ok(Term::Only {
                regions,
                body: self.term()?.id(),
            });
        }
        if self.at_kw("open") || self.at_kw("openα") || self.at_kw("openρ") {
            let which = match self.peek() {
                Some(Tok::Ident(w)) => w.clone(),
                _ => unreachable!(),
            };
            self.i += 1;
            let pkg = self.value()?;
            if !self.kw("as") {
                return self.err("expected as");
            }
            self.expect(Tok::LAngle, "⟨")?;
            let a = self.ident()?;
            self.expect(Tok::Comma, ",")?;
            let x = self.ident()?;
            self.expect(Tok::RAngle, "⟩")?;
            if !self.kw("in") {
                return self.err("expected in");
            }
            let body = self.term()?.id();
            return Ok(match which.as_str() {
                "open" => Term::OpenTag {
                    pkg,
                    tvar: a,
                    x,
                    body,
                },
                "openα" => Term::OpenAlpha {
                    pkg,
                    avar: a,
                    x,
                    body,
                },
                _ => Term::OpenRgn {
                    pkg,
                    rvar: a,
                    x,
                    body,
                },
            });
        }
        if self.at_kw("typecase") {
            self.i += 1;
            let tag = self.tag()?;
            if !self.kw("of") {
                return self.err("expected of");
            }
            if !self.kw("int") {
                return self.err("expected int arm");
            }
            self.expect(Tok::DArrow, "⇒")?;
            let int_arm = self.term()?;
            self.expect(Tok::Lambda, "λ")?;
            self.expect(Tok::DArrow, "⇒")?;
            let arrow_arm = self.term()?;
            let t1 = self.ident()?;
            self.expect(Tok::Times, "×")?;
            let t2 = self.ident()?;
            self.expect(Tok::DArrow, "⇒")?;
            let prod = self.term()?;
            self.expect(Tok::Exists, "∃")?;
            let te = self.ident()?;
            self.expect(Tok::DArrow, "⇒")?;
            let exist = self.term()?;
            return Ok(Term::Typecase {
                tag,
                int_arm: int_arm.id(),
                arrow_arm: arrow_arm.id(),
                prod_arm: (t1, t2, prod.id()),
                exist_arm: (te, exist.id()),
            });
        }
        if self.at_kw("ifleft") {
            self.i += 1;
            let x = self.ident()?;
            self.expect(Tok::Eq, "=")?;
            let scrut = self.value()?;
            if !self.kw("then") {
                return self.err("expected then");
            }
            let left = self.term()?;
            if !self.kw("else") {
                return self.err("expected else");
            }
            let right = self.term()?;
            return Ok(Term::IfLeft {
                x,
                scrut,
                left: left.id(),
                right: right.id(),
            });
        }
        if self.at_kw("set") {
            self.i += 1;
            let dst = self.value()?;
            self.expect(Tok::Assign, ":=")?;
            let src = self.value()?;
            self.expect(Tok::Semi, ";")?;
            return Ok(Term::Set {
                dst,
                src,
                body: self.term()?.id(),
            });
        }
        if self.at_kw("ifreg") {
            self.i += 1;
            self.expect(Tok::LParen, "(")?;
            let r1 = self.region()?;
            self.expect(Tok::Eq, "=")?;
            let r2 = self.region()?;
            self.expect(Tok::RParen, ")")?;
            if !self.kw("then") {
                return self.err("expected then");
            }
            let eq = self.term()?;
            if !self.kw("else") {
                return self.err("expected else");
            }
            let ne = self.term()?;
            return Ok(Term::IfReg {
                r1,
                r2,
                eq: eq.id(),
                ne: ne.id(),
            });
        }
        if self.at_kw("if0") {
            self.i += 1;
            let scrut = self.value()?;
            if !self.kw("then") {
                return self.err("expected then");
            }
            let zero = self.term()?;
            if !self.kw("else") {
                return self.err("expected else");
            }
            let nonzero = self.term()?;
            return Ok(Term::If0 {
                scrut,
                zero: zero.id(),
                nonzero: nonzero.id(),
            });
        }
        // A parenthesized term (needed for nested typecase arms).
        if self.peek() == Some(&Tok::LParen) {
            // Could also be the start of a pair value in an application…
            // applications start with a value, and `(v, v)[…]` is legal, so
            // try a term first and fall back.
            let save = self.i;
            self.i += 1;
            if let Ok(t) = self.term() {
                if self.peek() == Some(&Tok::RParen) {
                    self.i += 1;
                    return Ok(t);
                }
            }
            self.i = save;
        }
        // Application: v[tags][regions](args).
        let f = self.value()?;
        self.expect(Tok::LBrack, "[")?;
        let mut tags = Vec::new();
        if self.peek() != Some(&Tok::RBrack) {
            loop {
                tags.push(self.tag()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBrack, "]")?;
        self.expect(Tok::LBrack, "[")?;
        let mut regions = Vec::new();
        if self.peek() != Some(&Tok::RBrack) {
            loop {
                regions.push(self.region()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBrack, "]")?;
        self.expect(Tok::LParen, "(")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.value()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, ")")?;
        Ok(Term::App {
            f,
            tags,
            regions,
            args,
        })
    }

    // ---- code definitions -----------------------------------------------

    fn code_def(&mut self) -> PResult<CodeDef> {
        if !self.kw("fix") {
            return self.err("expected fix");
        }
        let name = self.ident()?;
        self.expect(Tok::LBrack, "[")?;
        let mut tvars = Vec::new();
        if self.peek() != Some(&Tok::RBrack) {
            loop {
                let t = self.ident()?;
                self.expect(Tok::Colon, ":")?;
                let k = self.kind()?;
                tvars.push((t, k));
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBrack, "]")?;
        let rvars = self.rvar_list()?;
        self.expect(Tok::LParen, "(")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let x = self.ident()?;
                self.expect(Tok::Colon, ":")?;
                let t = self.ty()?;
                params.push((x, t));
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, ")")?;
        self.expect(Tok::Dot, ".")?;
        let body = self.term()?;
        Ok(CodeDef {
            name,
            tvars,
            rvars,
            params,
            body,
        })
    }
}

/// Parses a term.
///
/// # Errors
///
/// Returns a [`GcParseError`] on malformed or trailing input.
pub fn parse_term(src: &str) -> PResult<Term> {
    let mut p = P {
        toks: lex(src)?,
        i: 0,
    };
    let t = p.term()?;
    if p.i != p.toks.len() {
        return p.err("trailing input");
    }
    Ok(t)
}

/// Parses a type.
///
/// # Errors
///
/// Returns a [`GcParseError`] on malformed or trailing input.
pub fn parse_ty(src: &str) -> PResult<Ty> {
    let mut p = P {
        toks: lex(src)?,
        i: 0,
    };
    let t = p.ty()?;
    if p.i != p.toks.len() {
        return p.err("trailing input");
    }
    Ok(t)
}

/// Parses a tag.
///
/// # Errors
///
/// Returns a [`GcParseError`] on malformed or trailing input.
pub fn parse_tag(src: &str) -> PResult<Tag> {
    let mut p = P {
        toks: lex(src)?,
        i: 0,
    };
    let t = p.tag()?;
    if p.i != p.toks.len() {
        return p.err("trailing input");
    }
    Ok(t)
}

/// Parses a `fix …` code definition (the rendering of
/// [`crate::pretty::code_def`]).
///
/// # Errors
///
/// Returns a [`GcParseError`] on malformed or trailing input.
pub fn parse_code_def(src: &str) -> PResult<CodeDef> {
    let mut p = P {
        toks: lex(src)?,
        i: 0,
    };
    let d = p.code_def()?;
    if p.i != p.toks.len() {
        return p.err("trailing input");
    }
    Ok(d)
}

/// Parses a sequence of `fix` definitions (a collector image listing).
///
/// # Errors
///
/// Returns a [`GcParseError`] on malformed input.
pub fn parse_code_defs(src: &str) -> PResult<Vec<CodeDef>> {
    let mut p = P {
        toks: lex(src)?,
        i: 0,
    };
    let mut out = Vec::new();
    while p.i < p.toks.len() {
        out.push(p.code_def()?);
    }
    Ok(out)
}
