//! Shared compiler infrastructure for the Principled Scavenging reproduction.
//!
//! This crate provides the two pieces of machinery every calculus in the
//! workspace needs:
//!
//! * [`Symbol`] — cheap interned identifiers with a global `gensym` for
//!   generating fresh binders during CPS conversion, closure conversion and
//!   capture-avoiding substitution.
//! * [`doc`] — a small Wadler-style pretty-printing library used to render
//!   λCLOS and λGC programs in a notation close to the paper's.
//!
//! # Examples
//!
//! ```
//! use ps_ir::Symbol;
//! let x = Symbol::intern("x");
//! assert_eq!(x.as_str(), "x");
//! let x1 = x.fresh();
//! assert_ne!(x, x1);
//! assert!(x1.as_str().starts_with("x%"));
//! ```

pub mod doc;
pub mod interner;
pub mod symbol;

pub use doc::Doc;
pub use interner::{ChunkedSlab, ConcurrentInterner, FxBuildHasher, FxHasher, Interner};
pub use symbol::{Symbol, SymbolMap, SymbolSet};
