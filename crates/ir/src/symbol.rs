//! Interned identifiers with gensym support.
//!
//! All binders in every calculus of this workspace are named (rather than
//! de Bruijn-indexed) so that the Rust code stays close to the paper's
//! notation. Capture-avoiding substitution therefore needs a cheap source of
//! fresh names; [`Symbol::fresh`] provides one backed by a global counter.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::RwLock;

/// An interned identifier.
///
/// Two symbols compare equal iff they intern the same string. Fresh symbols
/// produced by [`Symbol::fresh`] embed a globally unique suffix (`base%N`) and
/// therefore never collide with source-level names (the `%` character is not
/// accepted by any of our lexers).
///
/// # Examples
///
/// ```
/// use ps_ir::Symbol;
/// assert_eq!(Symbol::intern("copy"), Symbol::intern("copy"));
/// assert_ne!(Symbol::intern("copy"), Symbol::intern("gc"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
    table: HashMap<String, u32>,
}

static INTERNER: RwLock<Option<Interner>> = RwLock::new(None);
static GENSYM: AtomicU32 = AtomicU32::new(0);

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct names (unreachable in practice).
    #[allow(clippy::expect_used)]
    pub fn intern(name: &str) -> Symbol {
        {
            // The interner is append-only, so a value poisoned by a
            // panicking writer is still consistent; recover it.
            let guard = INTERNER
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(interner) = guard.as_ref() {
                if let Some(&id) = interner.table.get(name) {
                    return Symbol(id);
                }
            }
        }
        let mut guard = INTERNER
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let interner = guard.get_or_insert_with(|| Interner {
            names: Vec::new(),
            table: HashMap::new(),
        });
        if let Some(&id) = interner.table.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(interner.names.len()).expect("interner overflow");
        interner.names.push(name.to_owned());
        interner.table.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// Returns the interned string.
    ///
    /// The returned `String` is owned because the interner may reallocate; the
    /// cost is irrelevant for diagnostics, which is the only intended use.
    pub fn as_str(self) -> String {
        let guard = INTERNER
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard
            .as_ref()
            .and_then(|i| i.names.get(self.0 as usize))
            .cloned()
            .unwrap_or_else(|| format!("<sym#{}>", self.0))
    }

    /// Returns the base name of this symbol, i.e. the part before any gensym
    /// suffix.
    ///
    /// ```
    /// use ps_ir::Symbol;
    /// let x = Symbol::intern("acc").fresh().fresh();
    /// assert_eq!(x.base(), "acc");
    /// ```
    pub fn base(self) -> String {
        let s = self.as_str();
        match s.find('%') {
            Some(idx) => s[..idx].to_owned(),
            None => s,
        }
    }

    /// Produces a fresh symbol sharing this symbol's base name.
    ///
    /// Freshness is global: no two calls ever return the same symbol, and a
    /// fresh symbol never equals a directly interned source name.
    pub fn fresh(self) -> Symbol {
        gensym(&self.base())
    }
}

/// A [`Hasher`] specialised for [`Symbol`] keys.
///
/// Symbols hash a single `u32` intern id; mixing it with one 64-bit
/// multiplication (the Fibonacci constant) is both faster and better
/// distributed for table sizes that are powers of two than the default
/// SipHash, which matters in the interpreter's environment maps where a
/// lookup happens on every variable occurrence.
#[derive(Default)]
pub struct SymbolHasher(u64);

impl Hasher for SymbolHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (only exercised if a composite key embeds a
        // Symbol); fold bytes in and mix.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = u64::from(n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// `HashMap` keyed by [`Symbol`] using [`SymbolHasher`].
pub type SymbolMap<V> = HashMap<Symbol, V, BuildHasherDefault<SymbolHasher>>;

/// `HashSet` keyed by [`Symbol`] using [`SymbolHasher`].
pub type SymbolSet = std::collections::HashSet<Symbol, BuildHasherDefault<SymbolHasher>>;

/// Produces a globally fresh symbol with the given base name.
///
/// # Examples
///
/// ```
/// use ps_ir::symbol::gensym;
/// assert_ne!(gensym("r"), gensym("r"));
/// ```
pub fn gensym(base: &str) -> Symbol {
    let n = GENSYM.fetch_add(1, Ordering::Relaxed);
    Symbol::intern(&format!("{base}%{n}"))
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "foo");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("a"), Symbol::intern("b"));
    }

    #[test]
    fn fresh_never_collides() {
        let x = Symbol::intern("x");
        let mut seen = std::collections::HashSet::new();
        seen.insert(x);
        for _ in 0..100 {
            let f = x.fresh();
            assert!(seen.insert(f), "gensym produced a duplicate");
        }
    }

    #[test]
    fn fresh_keeps_base() {
        let x = Symbol::intern("kont");
        assert_eq!(x.fresh().base(), "kont");
        assert_eq!(x.fresh().fresh().base(), "kont");
    }

    #[test]
    fn gensym_from_scratch() {
        let g = gensym("t");
        assert_eq!(g.base(), "t");
        assert!(g.as_str().contains('%'));
    }

    #[test]
    fn display_matches_as_str() {
        let s = Symbol::intern("display-me");
        assert_eq!(format!("{s}"), "display-me");
        assert_eq!(format!("{s:?}"), "display-me");
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = Symbol::intern("ord-a");
        let b = Symbol::intern("ord-b");
        // Ordering is by intern id, not lexicographic; it only needs to be a
        // total order usable in BTreeMaps.
        assert_eq!(a.cmp(&b), a.cmp(&b));
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}
