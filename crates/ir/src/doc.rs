//! A Wadler-style pretty-printing library.
//!
//! Used to render λCLOS and λGC programs in a notation close to the paper's
//! figures. The algebra is the classic one: documents are built from text,
//! soft line breaks and nesting; [`Doc::group`] marks a subtree that should be
//! printed on one line if it fits within the target width.
//!
//! # Examples
//!
//! ```
//! use ps_ir::Doc;
//! let d = Doc::group(
//!     Doc::text("let x =")
//!         .append(Doc::line())
//!         .append(Doc::text("42"))
//!         .nest(2),
//! );
//! assert_eq!(d.render(80), "let x = 42");
//! assert_eq!(d.render(6), "let x =\n  42");
//! ```

use std::fmt;
use std::rc::Rc;

/// A pretty-printable document.
#[derive(Clone, Debug)]
pub struct Doc(Rc<DocNode>);

#[derive(Debug)]
enum DocNode {
    Nil,
    Text(String),
    /// A soft break: a space when flattened, a newline otherwise.
    Line,
    /// A soft break that flattens to nothing.
    SoftLine,
    /// A break that is always a newline, even inside a flattened group.
    HardLine,
    Concat(Doc, Doc),
    Nest(isize, Doc),
    Group(Doc),
}

impl Doc {
    /// The empty document.
    pub fn nil() -> Doc {
        Doc(Rc::new(DocNode::Nil))
    }

    /// Literal text. Must not contain newlines; use [`Doc::hardline`] instead.
    pub fn text(s: impl Into<String>) -> Doc {
        Doc(Rc::new(DocNode::Text(s.into())))
    }

    /// A soft break rendered as one space when the enclosing group fits.
    pub fn line() -> Doc {
        Doc(Rc::new(DocNode::Line))
    }

    /// A soft break rendered as nothing when the enclosing group fits.
    pub fn softline() -> Doc {
        Doc(Rc::new(DocNode::SoftLine))
    }

    /// An unconditional newline.
    pub fn hardline() -> Doc {
        Doc(Rc::new(DocNode::HardLine))
    }

    /// Concatenates `self` with `other`.
    pub fn append(self, other: Doc) -> Doc {
        Doc(Rc::new(DocNode::Concat(self, other)))
    }

    /// Increases the indentation of line breaks inside `self` by `n` columns.
    pub fn nest(self, n: isize) -> Doc {
        Doc(Rc::new(DocNode::Nest(n, self)))
    }

    /// Marks `self` as a unit that is flattened onto one line when it fits.
    pub fn group(doc: Doc) -> Doc {
        Doc(Rc::new(DocNode::Group(doc)))
    }

    /// Joins documents with a separator.
    ///
    /// ```
    /// use ps_ir::Doc;
    /// let d = Doc::join(
    ///     [Doc::text("a"), Doc::text("b"), Doc::text("c")],
    ///     Doc::text(", "),
    /// );
    /// assert_eq!(d.render(80), "a, b, c");
    /// ```
    pub fn join(docs: impl IntoIterator<Item = Doc>, sep: Doc) -> Doc {
        let mut out = Doc::nil();
        let mut first = true;
        for d in docs {
            if first {
                out = d;
                first = false;
            } else {
                out = out.append(sep.clone()).append(d);
            }
        }
        out
    }

    /// Wraps `self` in `open`/`close` delimiters with soft breaks, grouped.
    pub fn enclose(self, open: &str, close: &str) -> Doc {
        Doc::group(
            Doc::text(open)
                .append(Doc::softline().append(self).nest(2))
                .append(Doc::softline())
                .append(Doc::text(close)),
        )
    }

    /// Renders the document to a string at the given target width.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let mut col = 0usize;
        // Work list of (indent, flat?, doc).
        let mut stack: Vec<(isize, bool, Doc)> = vec![(0, false, self.clone())];
        while let Some((indent, flat, doc)) = stack.pop() {
            match &*doc.0 {
                DocNode::Nil => {}
                DocNode::Text(s) => {
                    out.push_str(s);
                    col += s.chars().count();
                }
                DocNode::Line => {
                    if flat {
                        out.push(' ');
                        col += 1;
                    } else {
                        newline(&mut out, &mut col, indent);
                    }
                }
                DocNode::SoftLine => {
                    if !flat {
                        newline(&mut out, &mut col, indent);
                    }
                }
                DocNode::HardLine => newline(&mut out, &mut col, indent),
                DocNode::Concat(a, b) => {
                    stack.push((indent, flat, b.clone()));
                    stack.push((indent, flat, a.clone()));
                }
                DocNode::Nest(n, d) => stack.push((indent + n, flat, d.clone())),
                DocNode::Group(d) => {
                    let fits = flat || fits(width.saturating_sub(col), d, &stack);
                    stack.push((indent, fits, d.clone()));
                }
            }
        }
        out
    }
}

fn newline(out: &mut String, col: &mut usize, indent: isize) {
    out.push('\n');
    let indent = indent.max(0) as usize;
    for _ in 0..indent {
        out.push(' ');
    }
    *col = indent;
}

/// Would `doc` (flattened) followed by the rest of the current line fit in
/// `remaining` columns?
fn fits(remaining: usize, doc: &Doc, rest: &[(isize, bool, Doc)]) -> bool {
    let mut remaining = remaining as isize;
    let mut stack: Vec<Doc> = vec![doc.clone()];
    let mut rest_iter = rest.iter().rev();
    loop {
        let doc = match stack.pop() {
            Some(d) => d,
            None => match rest_iter.next() {
                // Only peek into the continuation until the next line break.
                Some((_, _, d)) => d.clone(),
                None => return true,
            },
        };
        match &*doc.0 {
            DocNode::Nil => {}
            DocNode::Text(s) => {
                remaining -= s.chars().count() as isize;
                if remaining < 0 {
                    return false;
                }
            }
            // When measuring, a soft break inside the group is flattened; one
            // in the continuation ends the line, so everything fits.
            DocNode::Line => {
                remaining -= 1;
                if remaining < 0 {
                    return false;
                }
            }
            DocNode::SoftLine => {}
            DocNode::HardLine => return true,
            DocNode::Concat(a, b) => {
                stack.push(b.clone());
                stack.push(a.clone());
            }
            DocNode::Nest(_, d) | DocNode::Group(d) => stack.push(d.clone()),
        }
    }
}

impl fmt::Display for Doc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_renders_verbatim() {
        assert_eq!(Doc::text("hello").render(80), "hello");
    }

    #[test]
    fn group_flattens_when_it_fits() {
        let d = Doc::group(Doc::text("a").append(Doc::line()).append(Doc::text("b")));
        assert_eq!(d.render(10), "a b");
        assert_eq!(d.render(2), "a\nb");
    }

    #[test]
    fn nest_indents_breaks() {
        let d = Doc::group(Doc::text("fn()").append(Doc::line().append(Doc::text("body")).nest(4)));
        assert_eq!(d.render(3), "fn()\n    body");
    }

    #[test]
    fn hardline_forces_break_even_in_group() {
        let d = Doc::group(
            Doc::text("a")
                .append(Doc::hardline())
                .append(Doc::text("b")),
        );
        assert_eq!(d.render(100), "a\nb");
    }

    #[test]
    fn softline_disappears_when_flat() {
        let d = Doc::group(
            Doc::text("(")
                .append(Doc::softline())
                .append(Doc::text("x)")),
        );
        assert_eq!(d.render(80), "(x)");
    }

    #[test]
    fn join_with_separator() {
        let d = Doc::join((0..4).map(|i| Doc::text(i.to_string())), Doc::text(","));
        assert_eq!(d.render(80), "0,1,2,3");
    }

    #[test]
    fn join_of_empty_is_nil() {
        assert_eq!(
            Doc::join(std::iter::empty::<Doc>(), Doc::text(",")).render(80),
            ""
        );
    }

    #[test]
    fn enclose_groups_and_breaks() {
        let inner = Doc::join(
            (0..3).map(|i| Doc::text(format!("item{i}"))),
            Doc::text(", "),
        );
        let d = inner.clone().enclose("[", "]");
        assert_eq!(d.render(80), "[item0, item1, item2]");
        let narrow = d.render(10);
        assert!(narrow.contains('\n'));
    }

    #[test]
    fn nested_groups_break_independently() {
        let inner = Doc::group(Doc::text("x").append(Doc::line()).append(Doc::text("y")));
        let outer = Doc::group(Doc::text("aaaaaaaa").append(Doc::line()).append(inner));
        // Outer breaks, inner still fits.
        assert_eq!(outer.render(9), "aaaaaaaa\nx y");
    }

    #[test]
    fn display_uses_width_100() {
        let d = Doc::group(Doc::text("a").append(Doc::line()).append(Doc::text("b")));
        assert_eq!(format!("{d}"), "a b");
    }
}
