//! A generic hash-consing arena.
//!
//! [`Interner<T>`] assigns each structurally distinct value of `T` a dense
//! `u32` id and stores the value once, forever: interned nodes are leaked
//! into `&'static` storage, so an id can be dereferenced without holding
//! any lock for the lifetime of the process. Equality of ids is equality
//! of values, which turns deep structural comparisons into integer
//! compares and makes ids usable as memo-table keys.
//!
//! The interner itself is not synchronized; callers wrap it in an
//! `RwLock` (see the [`crate::Symbol`] interner for the idiom: an
//! uncontended read-lock probe first, then a write-lock insert on miss).
//! Hit/miss counters are atomic so the read path can record a hit without
//! upgrading its lock.
//!
//! # Examples
//!
//! ```
//! use ps_ir::Interner;
//! let mut arena: Interner<(u32, u32)> = Interner::new();
//! let a = arena.insert((1, 2));
//! let b = arena.insert((1, 2));
//! assert_eq!(a, b);
//! assert_eq!(arena.get(a), &(1, 2));
//! assert_eq!(arena.len(), 1);
//! ```

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// A hash-consing arena mapping values of `T` to dense `u32` ids.
///
/// See the [module documentation](self) for the intended usage pattern.
#[derive(Debug, Default)]
pub struct Interner<T: 'static> {
    nodes: Vec<&'static T>,
    table: HashMap<&'static T, u32>,
    hits: AtomicU64,
}

impl<T: Eq + Hash> Interner<T> {
    /// An empty arena.
    pub fn new() -> Interner<T> {
        Interner {
            nodes: Vec::new(),
            table: HashMap::new(),
            hits: AtomicU64::new(0),
        }
    }

    /// Looks up an already-interned value without inserting, recording a
    /// hit when found. Safe to call under a shared (read) lock.
    pub fn lookup(&self, value: &T) -> Option<u32> {
        let id = self.table.get(value).copied();
        if id.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        id
    }

    /// Interns `value`, returning its id. Requires exclusive access; the
    /// double-check against [`Self::lookup`] races is built in.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct nodes (unreachable in practice).
    #[allow(clippy::expect_used)]
    pub fn insert(&mut self, value: T) -> u32 {
        if let Some(&id) = self.table.get(&value) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("interner overflow");
        let node: &'static T = Box::leak(Box::new(value));
        self.nodes.push(node);
        self.table.insert(node, id);
        id
    }

    /// The node for `id`. The reference is `'static`: nodes are never
    /// dropped or moved once interned.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena.
    pub fn get(&self, id: u32) -> &'static T {
        self.nodes[id as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of times an intern call found its value already present.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut arena: Interner<String> = Interner::new();
        let a = arena.insert("x".to_string());
        let b = arena.insert("x".to_string());
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.hits(), 1);
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        let mut arena: Interner<u64> = Interner::new();
        let a = arena.insert(1);
        let b = arena.insert(2);
        assert_ne!(a, b);
        assert_eq!(arena.get(a), &1);
        assert_eq!(arena.get(b), &2);
    }

    #[test]
    fn lookup_without_insert() {
        let mut arena: Interner<u64> = Interner::new();
        assert_eq!(arena.lookup(&7), None);
        let id = arena.insert(7);
        assert_eq!(arena.lookup(&7), Some(id));
        assert_eq!(arena.hits(), 1);
    }

    #[test]
    fn nodes_are_static() {
        let mut arena: Interner<Vec<u32>> = Interner::new();
        let id = arena.insert(vec![1, 2, 3]);
        let node: &'static Vec<u32> = arena.get(id);
        assert_eq!(node.len(), 3);
    }

    #[test]
    fn ids_are_dense() {
        let mut arena: Interner<u32> = Interner::new();
        for i in 0..100 {
            assert_eq!(arena.insert(i), i);
        }
        assert_eq!(arena.len(), 100);
    }
}
