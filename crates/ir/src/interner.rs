//! Generic hash-consing arenas.
//!
//! [`Interner<T>`] assigns each structurally distinct value of `T` a dense
//! `u32` id and stores the value once, forever: interned nodes are leaked
//! into `&'static` storage, so an id can be dereferenced without holding
//! any lock for the lifetime of the process. Equality of ids is equality
//! of values, which turns deep structural comparisons into integer
//! compares and makes ids usable as memo-table keys.
//!
//! The plain [`Interner`] is not synchronized; callers wrap it in an
//! `RwLock` (see the [`crate::Symbol`] interner for the idiom: an
//! uncontended read-lock probe first, then a write-lock insert on miss).
//! [`ConcurrentInterner<T>`] is the shared-by-many-threads variant: id
//! dereference ([`ConcurrentInterner::get`]) is entirely lock-free via a
//! [`ChunkedSlab`] node index, the hash-cons table is sharded so lookups
//! from different threads rarely touch the same lock word, and hit
//! counters are striped across padded per-thread cache lines. A single
//! shared `RwLock` + one hit counter serializes parallel readers through
//! two hot cache lines; the sharded layout removes exactly that.
//!
//! # Examples
//!
//! ```
//! use ps_ir::Interner;
//! let mut arena: Interner<(u32, u32)> = Interner::new();
//! let a = arena.insert((1, 2));
//! let b = arena.insert((1, 2));
//! assert_eq!(a, b);
//! assert_eq!(arena.get(a), &(1, 2));
//! assert_eq!(arena.len(), 1);
//! ```
//!
//! ```
//! use ps_ir::ConcurrentInterner;
//! static ARENA: ConcurrentInterner<(u32, u32)> = ConcurrentInterner::new();
//! let a = ARENA.intern((1, 2));
//! let b = ARENA.intern((1, 2));
//! assert_eq!(a, b);
//! assert_eq!(ARENA.get(a), Some(&(1, 2)));
//! ```

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ptr::null_mut;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

// ----- hashing ------------------------------------------------------------

/// A fast, deterministic multiply-rotate hasher (the `FxHash` scheme) for
/// the hash-cons tables.
///
/// Interned nodes are small trees of `u32` ids and enum discriminants;
/// SipHash's per-byte mixing dominates the interning hot path on such
/// keys, while Fx folds a whole word per multiply. The tables never hold
/// untrusted keys, so HashDoS resistance buys nothing here, and the fixed
/// seed keeps hashes — and therefore shard assignment — deterministic
/// across runs.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's 64-bit multiplicative-hash constant (⌊2⁶⁴/φ⌋, odd).
const FX_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold in the tail length so "ab" and "ab\0" differ.
            word[7] = word[7].wrapping_add(rest.len() as u8);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A hash-consing arena mapping values of `T` to dense `u32` ids.
///
/// See the [module documentation](self) for the intended usage pattern.
#[derive(Debug, Default)]
pub struct Interner<T: 'static> {
    nodes: Vec<&'static T>,
    table: HashMap<&'static T, u32>,
    hits: AtomicU64,
}

impl<T: Eq + Hash> Interner<T> {
    /// An empty arena.
    pub fn new() -> Interner<T> {
        Interner {
            nodes: Vec::new(),
            table: HashMap::new(),
            hits: AtomicU64::new(0),
        }
    }

    /// Looks up an already-interned value without inserting, recording a
    /// hit when found. Safe to call under a shared (read) lock.
    pub fn lookup(&self, value: &T) -> Option<u32> {
        let id = self.table.get(value).copied();
        if id.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        id
    }

    /// Interns `value`, returning its id. Requires exclusive access; the
    /// double-check against [`Self::lookup`] races is built in.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct nodes (unreachable in practice).
    #[allow(clippy::expect_used)]
    pub fn insert(&mut self, value: T) -> u32 {
        if let Some(&id) = self.table.get(&value) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("interner overflow");
        let node: &'static T = Box::leak(Box::new(value));
        self.nodes.push(node);
        self.table.insert(node, id);
        id
    }

    /// The node for `id`. The reference is `'static`: nodes are never
    /// dropped or moved once interned.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena.
    pub fn get(&self, id: u32) -> &'static T {
        self.nodes[id as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of times an intern call found its value already present.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

// ----- lock-free id-indexed storage ---------------------------------------

/// Chunk `c` holds ids `[2^c - 1, 2^{c+1} - 1)`; 33 chunks cover all of
/// `u32`.
const SLAB_CHUNKS: usize = 33;

/// A lock-free, append-only table from dense `u32` ids to leaked
/// `&'static T`s: the node index of [`ConcurrentInterner`] and the backing
/// store for id-keyed memo tables.
///
/// Entries live in doubling chunks so the table grows without ever moving
/// an entry (a `Vec` resize would invalidate concurrent readers). Readers
/// take two `Acquire` loads — chunk pointer, then entry pointer — and no
/// lock. Writers allocate chunks with a CAS (the loser frees its copy) and
/// publish entries with a `Release` store. Callers must only ever publish
/// one value per id, or semantically equal values (a memo of a
/// deterministic function may benignly race on one entry).
pub struct ChunkedSlab<T> {
    chunks: [AtomicPtr<AtomicPtr<T>>; SLAB_CHUNKS],
}

impl<T> ChunkedSlab<T> {
    /// An empty slab; usable in `static` initializers.
    #[must_use]
    pub const fn new() -> ChunkedSlab<T> {
        ChunkedSlab {
            chunks: [const { AtomicPtr::new(null_mut()) }; SLAB_CHUNKS],
        }
    }

    /// (chunk, offset) of `id`: chunk `c = ⌊log2(id + 1)⌋` has `2^c`
    /// entries.
    fn locate(id: u32) -> (usize, usize) {
        let n = u64::from(id) + 1;
        let chunk = (63 - n.leading_zeros()) as usize;
        (chunk, (n - (1u64 << chunk)) as usize)
    }

    /// The entry published for `id`, if any. Lock-free.
    pub fn get(&self, id: u32) -> Option<&'static T> {
        let (c, off) = Self::locate(id);
        let chunk = self.chunks[c].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // SAFETY: a non-null chunk pointer is a leaked array of `1 << c`
        // entries (allocated in `set`), and `off < 1 << c` by `locate`.
        let entry = unsafe { &*chunk.add(off) };
        // SAFETY: non-null entries are leaked `&'static T`s.
        unsafe { entry.load(Ordering::Acquire).as_ref() }
    }

    /// Publishes the entry for `id`.
    pub fn set(&self, id: u32, value: &'static T) {
        let (c, off) = Self::locate(id);
        let slot = &self.chunks[c];
        let mut chunk = slot.load(Ordering::Acquire);
        if chunk.is_null() {
            let fresh: Box<[AtomicPtr<T>]> = (0..1usize << c)
                .map(|_| AtomicPtr::new(null_mut()))
                .collect();
            let fresh = Box::leak(fresh).as_mut_ptr();
            match slot.compare_exchange(null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => chunk = fresh,
                Err(won) => {
                    // SAFETY: `fresh` was leaked just above from a boxed
                    // slice of `1 << c` entries and lost the race
                    // unpublished, so reclaiming it here is exclusive.
                    drop(unsafe {
                        Box::from_raw(std::ptr::slice_from_raw_parts_mut(fresh, 1usize << c))
                    });
                    chunk = won;
                }
            }
        }
        // SAFETY: as in `get`; the store publishes a leaked `&'static T`.
        unsafe { &*chunk.add(off) }.store((value as *const T).cast_mut(), Ordering::Release);
    }

    /// Number of published entries (for telemetry; walks the whole
    /// capacity).
    pub fn count(&self) -> usize {
        let mut n = 0;
        for (c, slot) in self.chunks.iter().enumerate() {
            let chunk = slot.load(Ordering::Acquire);
            if chunk.is_null() {
                continue;
            }
            for off in 0..1usize << c {
                // SAFETY: as in `get`.
                if !unsafe { &*chunk.add(off) }
                    .load(Ordering::Acquire)
                    .is_null()
                {
                    n += 1;
                }
            }
        }
        n
    }
}

impl<T> Default for ChunkedSlab<T> {
    fn default() -> ChunkedSlab<T> {
        ChunkedSlab::new()
    }
}

// ----- concurrent interner ------------------------------------------------

/// Number of hash-cons table shards. A power of two; the shard of a value
/// is the low bits of its hash.
const SHARDS: usize = 16;

/// Number of striped hit counters, each on its own cache line.
const HIT_STRIPES: usize = 8;

/// A hit counter padded to a cache line so stripes do not false-share.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// The stripe this thread bumps: threads are assigned round-robin on
/// first use, so concurrent certification workers land on distinct cache
/// lines.
fn stripe_index() -> usize {
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    STRIPE.with(|c| {
        let mut i = c.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(i);
        }
        i % HIT_STRIPES
    })
}

/// A shared hash-consing arena built for parallel readers.
///
/// Functionally [`Interner`] behind synchronization, with the hot paths
/// restructured so many threads interning and dereferencing concurrently
/// do not bounce shared cache lines:
///
/// * [`get`](Self::get) (id → node) reads a [`ChunkedSlab`] — no lock;
/// * [`intern`](Self::intern) probes one of [`SHARDS`] independent hash
///   tables, taking a read lock on only that shard (write lock on miss);
/// * hit counters are striped over padded per-thread cache lines.
///
/// Ids are dense across the whole arena (a shared allocation counter), and
/// every node is published to the slab *before* its id is returned, so any
/// id obtained from `intern` can be dereferenced lock-free forever.
pub struct ConcurrentInterner<T: 'static> {
    shards: [Shard<T>; SHARDS],
    nodes: ChunkedSlab<T>,
    next: AtomicU32,
    hits: [PaddedCounter; HIT_STRIPES],
}

/// One hash-cons table shard, allocated lazily on first insert (`None`
/// until then) so the arena itself can be a `const`-constructed `static`.
type Shard<T> = RwLock<Option<HashMap<&'static T, u32, FxBuildHasher>>>;

/// Read-locks a shard even if a writer panicked mid-insert: the tables are
/// append-only caches, so a poisoned shard is still internally consistent.
fn shard_read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-lock counterpart of [`shard_read`].
fn shard_write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T: Eq + Hash> ConcurrentInterner<T> {
    /// An empty arena; usable in `static` initializers.
    #[must_use]
    pub const fn new() -> ConcurrentInterner<T> {
        ConcurrentInterner {
            shards: [const { RwLock::new(None) }; SHARDS],
            nodes: ChunkedSlab::new(),
            next: AtomicU32::new(0),
            hits: [const { PaddedCounter(AtomicU64::new(0)) }; HIT_STRIPES],
        }
    }

    fn shard_of(value: &T) -> usize {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        // The map hasher consumes the same low bits first; take the top
        // bits for the shard so the two partitions stay independent.
        (h.finish() >> 60) as usize & (SHARDS - 1)
    }

    fn note_hit(&self) {
        self.hits[stripe_index()].0.fetch_add(1, Ordering::Relaxed);
    }

    /// Interns `value`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct nodes (unreachable in practice).
    pub fn intern(&self, value: T) -> u32 {
        let shard = &self.shards[Self::shard_of(&value)];
        if let Some(&id) = shard_read(shard).as_ref().and_then(|m| m.get(&value)) {
            self.note_hit();
            return id;
        }
        let mut guard = shard_write(shard);
        let map = guard.get_or_insert_with(HashMap::default);
        if let Some(&id) = map.get(&value) {
            self.note_hit();
            return id;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(id != u32::MAX, "interner overflow");
        let node: &'static T = Box::leak(Box::new(value));
        // Publish for lock-free deref before the id can escape.
        self.nodes.set(id, node);
        map.insert(node, id);
        id
    }
}

impl<T> ConcurrentInterner<T> {
    /// The node for `id`, if `id` was produced by this arena. Lock-free.
    pub fn get(&self, id: u32) -> Option<&'static T> {
        self.nodes.get(id)
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of times an intern call found its value already present.
    pub fn hits(&self) -> u64 {
        self.hits.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl<T: Eq + Hash> Default for ConcurrentInterner<T> {
    fn default() -> ConcurrentInterner<T> {
        ConcurrentInterner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut arena: Interner<String> = Interner::new();
        let a = arena.insert("x".to_string());
        let b = arena.insert("x".to_string());
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.hits(), 1);
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        let mut arena: Interner<u64> = Interner::new();
        let a = arena.insert(1);
        let b = arena.insert(2);
        assert_ne!(a, b);
        assert_eq!(arena.get(a), &1);
        assert_eq!(arena.get(b), &2);
    }

    #[test]
    fn lookup_without_insert() {
        let mut arena: Interner<u64> = Interner::new();
        assert_eq!(arena.lookup(&7), None);
        let id = arena.insert(7);
        assert_eq!(arena.lookup(&7), Some(id));
        assert_eq!(arena.hits(), 1);
    }

    #[test]
    fn nodes_are_static() {
        let mut arena: Interner<Vec<u32>> = Interner::new();
        let id = arena.insert(vec![1, 2, 3]);
        let node: &'static Vec<u32> = arena.get(id);
        assert_eq!(node.len(), 3);
    }

    #[test]
    fn ids_are_dense() {
        let mut arena: Interner<u32> = Interner::new();
        for i in 0..100 {
            assert_eq!(arena.insert(i), i);
        }
        assert_eq!(arena.len(), 100);
    }

    #[test]
    fn slab_round_trips_across_chunk_boundaries() {
        let slab: ChunkedSlab<u32> = ChunkedSlab::new();
        assert_eq!(slab.get(0), None);
        for id in [0u32, 1, 2, 3, 6, 7, 1000, 65_535, 1 << 20] {
            let v: &'static u32 = Box::leak(Box::new(id * 3 + 1));
            slab.set(id, v);
            assert_eq!(slab.get(id), Some(v));
        }
        assert_eq!(slab.get(4), None);
        assert_eq!(slab.count(), 9);
    }

    #[test]
    fn concurrent_interning_is_idempotent() {
        static ARENA: ConcurrentInterner<String> = ConcurrentInterner::new();
        let a = ARENA.intern("x".to_string());
        let b = ARENA.intern("x".to_string());
        assert_eq!(a, b);
        assert_eq!(ARENA.len(), 1);
        assert_eq!(ARENA.hits(), 1);
        assert_eq!(ARENA.get(a).map(String::as_str), Some("x"));
    }

    #[test]
    fn concurrent_interning_from_many_threads() {
        static ARENA: ConcurrentInterner<(u32, u32)> = ConcurrentInterner::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u32 {
                        let id = ARENA.intern((i, i * 2));
                        assert_eq!(ARENA.get(id), Some(&(i, i * 2)));
                    }
                });
            }
        });
        assert_eq!(ARENA.len(), 1000);
        // Every value interned once, hit 3999 times in total.
        assert_eq!(ARENA.hits(), 3000);
        // Ids are dense: every id below len resolves.
        for id in 0..1000u32 {
            assert!(ARENA.get(id).is_some());
        }
    }
}
