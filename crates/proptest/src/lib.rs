//! A self-contained, offline stand-in for the [`proptest`] crate.
//!
//! Tier-1 verification for this workspace must run with **no network
//! access**, so the real proptest (and its transitive dependency tree)
//! cannot be fetched from a registry. This crate implements the exact
//! subset of proptest's API that the workspace's property tests use —
//! the [`proptest!`] macro, [`ProptestConfig::with_cases`],
//! [`collection::vec`], [`any`], [`Just`], [`prop_oneof!`],
//! [`Strategy::prop_map`], string-pattern strategies, and the
//! `prop_assert*` macros — with the same call syntax, so the test files
//! compile unchanged against either implementation.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: every test function derives its RNG seed from its
//!   own name, so runs are reproducible without a persistence file.
//! * **No shrinking**: a failing case panics with the assert message
//!   immediately. Shrinking is a debugging convenience, not a soundness
//!   requirement; the generators in this workspace are tape-driven and
//!   already produce small inputs.
//! * **String patterns are not regexes**: a `&str` strategy such as
//!   `"\\PC*"` generates printable character soup of bounded length
//!   rather than interpreting the pattern. The only pattern used in this
//!   workspace is exactly that one ("any printable characters").
//!
//! [`proptest`]: https://crates.io/crates/proptest

/// Deterministic test-case RNG (xorshift64*) and run configuration.
pub mod test_runner {
    /// Run configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test function runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A small deterministic RNG (xorshift64*), seeded from the test name.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from an arbitrary string via FNV-1a; never yields the
        /// all-zero state xorshift cannot leave.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform-ish value in `0..bound` (`bound` must be nonzero).
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// The [`Strategy`] trait and the combinators the workspace uses.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    ///
    /// Unlike real proptest there is no value tree: `generate` produces a
    /// final value directly and failing cases are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of the same type
    /// (the desugaring of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S> Union<S> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// String-pattern strategy: generates printable character soup.
    ///
    /// The pattern itself is ignored (see the crate docs); lengths are
    /// 0..64 characters drawn from ASCII printables plus a few multi-byte
    /// code points so UTF-8 boundary handling gets exercised.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            const EXTRA: &[char] = &['λ', 'Ω', 'ν', 'π', '→', '⟨', '⟩', '×', '∀', '∃', 'é', '字'];
            let len = rng.below(64);
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                if rng.below(8) == 0 {
                    s.push(EXTRA[rng.below(EXTRA.len())]);
                } else {
                    // Printable ASCII, space through '~'.
                    s.push(char::from(b' ' + rng.below(95) as u8));
                }
            }
            s
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait backing it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (only `vec` is needed).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length lies in `len` (half-open, as in
    /// `proptest::collection::vec(any::<u8>(), 0..256)`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the test files import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Supports the same surface as the real macro for the forms used in this
/// workspace: an optional `#![proptest_config(...)]` header followed by
/// test functions whose parameters are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..cfg.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
}

/// Uniform choice between strategies of a common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

/// Asserts a condition inside a property body (panics on failure; this
/// stand-in does not shrink, so plain assert semantics are equivalent).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::from_name("lens");
        let strat = crate::collection::vec(any::<u8>(), 4..64);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((4..64).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn string_strategy_is_printable_utf8() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..100 {
            let s: String = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, oneof, map, asserts.
        #[test]
        fn macro_roundtrip(
            bytes in crate::collection::vec(any::<u8>(), 0..16),
            word in prop_oneof![Just("a"), Just("bb")].prop_map(str::to_string),
        ) {
            prop_assert!(bytes.len() < 16);
            prop_assert_eq!(word.is_empty(), false, "word {:?}", word);
        }
    }
}
