//! # scavenger — *Principled Scavenging* as a library
//!
//! A full reproduction of Monnier, Saha & Shao, *Principled Scavenging*
//! (PLDI 2001): provably type-safe stop-and-copy garbage collection built
//! from a region calculus plus intensional type analysis.
//!
//! The headline idea: instead of trusting the collector, *write it inside a
//! type-safe language* (λGC) whose hard-wired Typerec `Mρ(τ)` states the
//! mutator–collector contract, and let an ordinary typechecker certify it.
//! This crate compiles a small ML-like source language down to λGC, links
//! it with one of three certified collectors, and runs the result on the
//! paper's own operational semantics:
//!
//! | collector | paper | what it shows |
//! |---|---|---|
//! | [`Collector::Basic`] | Figs. 4/12 | the core contract `copy : M_{r₁}(t) → M_{r₂}(t)` |
//! | [`Collector::Forwarding`] | Fig. 9, §7 | efficient forwarding pointers via the `widen` cast; sharing preserved |
//! | [`Collector::Generational`] | Fig. 11, §8 | minor collections that never touch the old generation |
//!
//! # Examples
//!
//! ```
//! use scavenger::{Collector, Pipeline};
//!
//! # fn main() -> Result<(), scavenger::PipelineError> {
//! let program = Pipeline::new(Collector::Basic)
//!     .region_budget(96) // tiny: force many collections
//!     .compile("fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 10")?;
//! program.typecheck()?; // certifies mutator AND collector together
//! let run = program.run(10_000_000)?;
//! assert_eq!(run.result, 3_628_800);
//! assert!(run.stats.collections > 0);
//! # Ok(())
//! # }
//! ```

use std::fmt;

pub use ps_clos as clos;
pub use ps_collectors as collectors;
pub use ps_gc_lang as gc_lang;
pub use ps_ir as ir;
pub use ps_lambda as lambda;
pub use ps_trans as trans;

use ps_collectors::CollectorImage;
use ps_gc_lang::env_machine::EnvMachine;
use ps_gc_lang::faults::FaultPlan;
use ps_gc_lang::machine::{Outcome, Program, Stats, SubstMachine};
use ps_gc_lang::memory::{GrowthPolicy, MemConfig};

pub use ps_gc_lang::memory::PageStats;
use ps_gc_lang::tyck::Checker;

pub use ps_gc_lang::machine::{AuditMode, Backend, Machine};

pub mod workloads;

/// GC telemetry: structured event streams, observers, recorders, and the
/// JSON-lines trace schema. Defined in [`ps_gc_lang`] (the machines emit
/// the events) and re-exported here as the public face of the subsystem.
pub mod telemetry {
    pub use ps_gc_lang::telemetry::*;
}

use telemetry::{RunMeta, SharedObserver};

/// Which certified collector to link against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Collector {
    /// The basic stop-and-copy collector of Fig. 12 (no sharing
    /// preservation: DAGs are copied as trees).
    Basic,
    /// The forwarding-pointer collector of Fig. 9 (§7).
    Forwarding,
    /// The generational collector of Fig. 11 (§8), minor collections.
    Generational,
}

impl Collector {
    /// Every collector, in canonical order (drives CLI metavars and the
    /// exhaustive collector × backend test matrices).
    pub const ALL: [Collector; 3] = [
        Collector::Basic,
        Collector::Forwarding,
        Collector::Generational,
    ];

    /// The collector's λGC code image.
    pub fn image(self) -> CollectorImage {
        match self {
            Collector::Basic => ps_collectors::basic::collector(),
            Collector::Forwarding => ps_collectors::forwarding::collector(),
            Collector::Generational => ps_collectors::generational::collector(),
        }
    }

    /// The collector's canonical name — the single source for `Display`,
    /// `FromStr`, CLI metavars, and trace metadata.
    pub fn name(self) -> &'static str {
        match self {
            Collector::Basic => "basic",
            Collector::Forwarding => "forwarding",
            Collector::Generational => "generational",
        }
    }
}

impl fmt::Display for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Collector {
    type Err = String;

    fn from_str(s: &str) -> Result<Collector, String> {
        Collector::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown collector {s:?} (expected {})",
                    Collector::ALL.map(Collector::name).join("|")
                )
            })
    }
}

/// An error from any stage of the pipeline.
#[derive(Clone, Debug)]
pub enum PipelineError {
    /// Source lexing/parsing failed.
    Parse(ps_lambda::parse::ParseError),
    /// The source program is ill-typed.
    SourceType(ps_lambda::typecheck::TypeError),
    /// CPS conversion failed (ill-typed input).
    Cps(ps_clos::cps::CpsError),
    /// Closure conversion failed (CPS invariant violated).
    Cc(ps_clos::cc::CcError),
    /// The λCLOS intermediate program is ill-typed (a compiler bug).
    ClosType(ps_clos::tyck::ClosTypeError),
    /// Translation to λGC failed.
    Trans(ps_trans::TransError),
    /// The final λGC program is ill-typed (a compiler or collector bug).
    GcType(ps_gc_lang::error::LangError),
    /// The machine got stuck or hit a memory fault.
    Runtime(ps_gc_lang::error::LangError),
    /// A periodic heap audit (`--verify-every`) found a violated invariant.
    InvariantViolation(ps_gc_lang::error::LangError),
    /// The machine ran out of fuel.
    OutOfFuel,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::SourceType(e) => write!(f, "{e}"),
            PipelineError::Cps(e) => write!(f, "{e}"),
            PipelineError::Cc(e) => write!(f, "{e}"),
            PipelineError::ClosType(e) => write!(f, "{e}"),
            PipelineError::Trans(e) => write!(f, "{e}"),
            PipelineError::GcType(e) => write!(f, "λGC {e}"),
            PipelineError::Runtime(e) => write!(f, "runtime {e}"),
            PipelineError::InvariantViolation(e) => write!(f, "heap invariant violated: {e}"),
            PipelineError::OutOfFuel => write!(f, "machine ran out of fuel"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Everything that configures one run, in one place: which collector to
/// link, which backend interprets, the memory settings, the fuel, and the
/// telemetry observer. Consumed by [`RunOptions::compile`] /
/// [`Compiled::run_with`] in the library and by `psgc`'s flag parser, so
/// the CLI and the API cannot drift apart.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`RunOptions::builder`] (or [`RunOptions::new`] /
/// [`RunOptions::default`] plus field assignment), so new backend/VM knobs
/// can be added without breaking downstream construction sites.
///
/// # Examples
///
/// ```
/// use scavenger::{Collector, RunOptions};
///
/// # fn main() -> Result<(), scavenger::PipelineError> {
/// let opts = RunOptions::builder()
///     .collector(Collector::Forwarding)
///     .budget(96)
///     .build();
/// let run = opts.compile("fun f (n : int) : int = n + n\n f 21")?.run_with(&opts)?;
/// assert_eq!(run.result, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct RunOptions {
    /// Which certified collector to link against.
    pub collector: Collector,
    /// Interpreter backend; `None` picks [`Backend::default_for`].
    pub backend: Option<Backend>,
    /// Base region budget in words.
    pub budget: usize,
    /// Region budget growth policy.
    pub growth: GrowthPolicy,
    /// Step limit for the run.
    pub fuel: u64,
    /// Maintain the memory typing `Ψ` while running.
    pub track_types: bool,
    /// Typecheck every intermediate program during compilation.
    pub check_stages: bool,
    /// Telemetry observer to attach to the machine, if any.
    pub observer: Option<SharedObserver>,
    /// Emit a [`telemetry::GcEvent::Step`] heap sample every this many
    /// machine steps (0 = never). Only meaningful with an observer.
    pub step_interval: u64,
    /// Run the [`ps_gc_lang::verify`] heap auditor every this many machine
    /// steps (0 = never). A failed audit ends the run with
    /// [`PipelineError::InvariantViolation`].
    pub verify_every: u64,
    /// Deterministic fault to inject during the run, if any
    /// (fault-injection machinery; see [`ps_gc_lang::faults`]).
    pub inject: Option<FaultPlan>,
    /// Hard cap on live heap words; an allocation that would exceed it
    /// fails with a typed out-of-memory error (`None` = unbounded).
    /// Accounting is page-granular: the cap is charged per page footprint,
    /// not per object.
    pub max_heap_words: Option<usize>,
    /// Page size of the BiBOP store, in words (rounded up to a power of
    /// two by [`MemConfig`]).
    pub page_words: usize,
    /// How the periodic heap audit walks the store: incrementally over
    /// dirtied pages (the default) or as a full walk every time.
    pub audit: AuditMode,
    /// Enable superinstruction fusion in the bytecode backend (on by
    /// default; the toggle exists for A/B measurement). Ignored by the
    /// other backends.
    pub superinstructions: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            collector: Collector::Basic,
            backend: None,
            budget: MemConfig::default().region_budget,
            growth: MemConfig::default().growth,
            fuel: 1_000_000_000,
            track_types: false,
            check_stages: true,
            observer: None,
            step_interval: 0,
            verify_every: 0,
            inject: None,
            max_heap_words: None,
            page_words: MemConfig::default().page_words,
            audit: AuditMode::default(),
            superinstructions: true,
        }
    }
}

impl RunOptions {
    /// Defaults with the given collector.
    pub fn new(collector: Collector) -> RunOptions {
        RunOptions {
            collector,
            ..RunOptions::default()
        }
    }

    /// A builder over the defaults — the forward-compatible way to
    /// construct options (the struct is `#[non_exhaustive]`).
    pub fn builder() -> RunOptionsBuilder {
        RunOptionsBuilder::default()
    }

    /// The memory configuration these options describe.
    pub fn mem_config(&self) -> MemConfig {
        MemConfig {
            region_budget: self.budget,
            growth: self.growth,
            track_types: self.track_types,
            max_heap_words: self.max_heap_words,
            page_words: self.page_words,
        }
    }

    /// The backend these options select (resolving the default).
    pub fn resolved_backend(&self) -> Backend {
        self.backend
            .unwrap_or(Backend::default_for(self.track_types))
    }

    /// The equivalent [`Pipeline`] (observer included).
    pub fn pipeline(&self) -> Pipeline {
        Pipeline {
            collector: self.collector,
            config: self.mem_config(),
            check_stages: self.check_stages,
            backend: self.backend,
            observer: self.observer.clone(),
            step_interval: self.step_interval,
        }
    }

    /// Compiles `source` under these options.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::compile`].
    pub fn compile(&self, source: &str) -> Result<Compiled, PipelineError> {
        self.pipeline().compile(source)
    }

    /// Trace-header metadata describing these options (for
    /// [`telemetry::Recorder::with_meta`]).
    pub fn meta(&self) -> RunMeta {
        RunMeta {
            collector: self.collector.name().to_string(),
            backend: self.resolved_backend().to_string(),
            budget: self.budget,
            growth: self.growth.to_string(),
            fuel: self.fuel,
            step_interval: self.step_interval,
        }
    }
}

/// Chainable constructor for [`RunOptions`], starting from the defaults.
/// Obtained from [`RunOptions::builder`]; finish with
/// [`RunOptionsBuilder::build`].
///
/// # Examples
///
/// ```
/// use scavenger::{Backend, Collector, RunOptions};
///
/// let opts = RunOptions::builder()
///     .collector(Collector::Generational)
///     .backend(Backend::Bytecode)
///     .budget(128)
///     .verify_every(64)
///     .build();
/// assert_eq!(opts.resolved_backend(), Backend::Bytecode);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunOptionsBuilder {
    opts: RunOptions,
}

impl RunOptionsBuilder {
    /// Which certified collector to link against.
    pub fn collector(mut self, collector: Collector) -> RunOptionsBuilder {
        self.opts.collector = collector;
        self
    }

    /// Pins the interpreter backend (the default resolves via
    /// [`Backend::default_for`]).
    pub fn backend(mut self, backend: Backend) -> RunOptionsBuilder {
        self.opts.backend = Some(backend);
        self
    }

    /// Base region budget in words.
    pub fn budget(mut self, words: usize) -> RunOptionsBuilder {
        self.opts.budget = words;
        self
    }

    /// Region budget growth policy.
    pub fn growth(mut self, policy: GrowthPolicy) -> RunOptionsBuilder {
        self.opts.growth = policy;
        self
    }

    /// Step limit for the run.
    pub fn fuel(mut self, fuel: u64) -> RunOptionsBuilder {
        self.opts.fuel = fuel;
        self
    }

    /// Maintain the memory typing `Ψ` while running.
    pub fn track_types(mut self, on: bool) -> RunOptionsBuilder {
        self.opts.track_types = on;
        self
    }

    /// Typecheck every intermediate program during compilation.
    pub fn check_stages(mut self, on: bool) -> RunOptionsBuilder {
        self.opts.check_stages = on;
        self
    }

    /// Attaches a telemetry observer; `step_interval > 0` additionally
    /// emits periodic heap samples.
    pub fn observer(mut self, observer: SharedObserver, step_interval: u64) -> RunOptionsBuilder {
        self.opts.observer = Some(observer);
        self.opts.step_interval = step_interval;
        self
    }

    /// Run the heap auditor every `n` machine steps (0 = never).
    pub fn verify_every(mut self, n: u64) -> RunOptionsBuilder {
        self.opts.verify_every = n;
        self
    }

    /// Arms a deterministic fault plan (fault-injection machinery).
    pub fn inject(mut self, plan: FaultPlan) -> RunOptionsBuilder {
        self.opts.inject = Some(plan);
        self
    }

    /// Hard cap on live heap words.
    pub fn max_heap_words(mut self, words: usize) -> RunOptionsBuilder {
        self.opts.max_heap_words = Some(words);
        self
    }

    /// Page size of the BiBOP store, in words.
    pub fn page_words(mut self, words: usize) -> RunOptionsBuilder {
        self.opts.page_words = words;
        self
    }

    /// Audit strategy for the periodic heap auditor.
    pub fn audit(mut self, mode: AuditMode) -> RunOptionsBuilder {
        self.opts.audit = mode;
        self
    }

    /// Enable/disable superinstruction fusion in the bytecode backend.
    pub fn superinstructions(mut self, on: bool) -> RunOptionsBuilder {
        self.opts.superinstructions = on;
        self
    }

    /// The finished options.
    pub fn build(self) -> RunOptions {
        self.opts
    }
}

/// The compilation pipeline: source → CPS → λCLOS → λGC, linked with a
/// certified collector.
#[derive(Clone, Debug)]
pub struct Pipeline {
    collector: Collector,
    config: MemConfig,
    check_stages: bool,
    backend: Option<Backend>,
    observer: Option<SharedObserver>,
    step_interval: u64,
}

impl Pipeline {
    /// A pipeline for the given collector with default memory settings.
    pub fn new(collector: Collector) -> Pipeline {
        Pipeline {
            collector,
            config: MemConfig::default(),
            check_stages: true,
            backend: None,
            observer: None,
            step_interval: 0,
        }
    }

    /// Sets the base region budget in words (how much mutator allocation
    /// fits before `ifgc` triggers a collection).
    pub fn region_budget(mut self, words: usize) -> Pipeline {
        self.config.region_budget = words;
        self
    }

    /// Sets the budget growth policy.
    pub fn growth(mut self, policy: GrowthPolicy) -> Pipeline {
        self.config.growth = policy;
        self
    }

    /// Maintains the memory typing `Ψ` while running, enabling
    /// [`gc_lang::wf::check_state`] (slower; off by default).
    pub fn track_types(mut self, on: bool) -> Pipeline {
        self.config.track_types = on;
        self
    }

    /// Skips the per-stage intermediate typechecks during [`Self::compile`]
    /// (they are cheap; only benchmarks turn them off).
    pub fn check_stages(mut self, on: bool) -> Pipeline {
        self.check_stages = on;
        self
    }

    /// Pins the interpreter backend for [`Compiled::run`].
    ///
    /// By default the backend is chosen automatically: the environment
    /// machine ([`Backend::Env`]) for plain runs, the substitution machine
    /// ([`Backend::Subst`]) when [`Self::track_types`] is on — the
    /// well-formedness judgement `⊢ (M, e)` consumes a closed term, which
    /// only the substitution machine maintains. The two backends are
    /// observationally identical (results *and* statistics).
    pub fn backend(mut self, backend: Backend) -> Pipeline {
        self.backend = Some(backend);
        self
    }

    /// Attaches a telemetry observer to machines created from the compiled
    /// program. `step_interval > 0` additionally emits periodic heap
    /// samples (see [`telemetry::GcEvent::Step`]).
    pub fn observer(mut self, observer: SharedObserver, step_interval: u64) -> Pipeline {
        self.observer = Some(observer);
        self.step_interval = step_interval;
        self
    }

    /// The memory configuration this pipeline loads machines with.
    pub fn config(&self) -> MemConfig {
        self.config
    }

    /// Compiles a source program all the way to a λGC program linked with
    /// the collector.
    ///
    /// # Errors
    ///
    /// Returns the first stage error; with `check_stages` on (the default),
    /// every intermediate program is typechecked, so miscompilation
    /// surfaces as a [`PipelineError::ClosType`]/[`PipelineError::GcType`]
    /// here rather than at run time.
    pub fn compile(&self, source: &str) -> Result<Compiled, PipelineError> {
        let src = ps_lambda::parse::parse_program(source).map_err(PipelineError::Parse)?;
        ps_lambda::typecheck::check_program(&src).map_err(PipelineError::SourceType)?;
        let cps = ps_clos::cps::cps_program(&src).map_err(PipelineError::Cps)?;
        if self.check_stages {
            ps_lambda::typecheck::check_program(&cps).map_err(PipelineError::SourceType)?;
        }
        let clos = ps_clos::cc::cc_program(&cps).map_err(PipelineError::Cc)?;
        if self.check_stages {
            ps_clos::tyck::check_program(&clos).map_err(PipelineError::ClosType)?;
        }
        let image = self.collector.image();
        let program = match self.collector {
            Collector::Basic => ps_trans::basic::translate(&clos, &image),
            Collector::Forwarding => ps_trans::forwarding::translate(&clos, &image),
            Collector::Generational => ps_trans::generational::translate(&clos, &image),
        }
        .map_err(PipelineError::Trans)?;
        Ok(Compiled {
            collector: self.collector,
            config: self.config,
            backend: self
                .backend
                .unwrap_or(Backend::default_for(self.config.track_types)),
            observer: self.observer.clone(),
            step_interval: self.step_interval,
            source: src,
            clos,
            program,
        })
    }
}

/// A compiled program with its intermediate forms.
#[derive(Clone, Debug)]
pub struct Compiled {
    collector: Collector,
    config: MemConfig,
    backend: Backend,
    observer: Option<SharedObserver>,
    step_interval: u64,
    /// The parsed source program.
    pub source: ps_lambda::syntax::SrcProgram,
    /// The λCLOS intermediate program.
    pub clos: ps_clos::syntax::CProgram,
    /// The final λGC program (collector + translated mutator).
    pub program: Program,
}

/// The outcome of running a compiled program.
#[derive(Clone, Debug)]
pub struct Run {
    /// The integer the program halted with.
    pub result: i64,
    /// Machine statistics (collections, words reclaimed, …).
    pub stats: Stats,
    /// BiBOP page-store statistics at halt (`psgc --stats-pages`).
    pub pages: PageStats,
}

impl Compiled {
    /// Which collector this program is linked with.
    pub fn collector(&self) -> Collector {
        self.collector
    }

    /// Which interpreter backend [`Self::run`] uses.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Overrides the interpreter backend for [`Self::run`].
    pub fn with_backend(mut self, backend: Backend) -> Compiled {
        self.backend = backend;
        self
    }

    /// Attaches a telemetry observer for [`Self::run`] (see
    /// [`Pipeline::observer`]).
    pub fn with_observer(mut self, observer: SharedObserver, step_interval: u64) -> Compiled {
        self.observer = Some(observer);
        self.step_interval = step_interval;
        self
    }

    /// Typechecks the *whole* λGC program — mutator and collector together
    /// — under the paper's static semantics. This is the certification
    /// step: no part of memory management remains in the trusted base.
    ///
    /// # Errors
    ///
    /// Returns the λGC type error, naming the offending code block.
    pub fn typecheck(&self) -> Result<(), PipelineError> {
        Checker::check_program(&self.program).map_err(PipelineError::GcType)
    }

    /// Creates a machine loaded with this program.
    pub fn machine(&self) -> SubstMachine {
        SubstMachine::load(&self.program, self.config)
    }

    /// Creates a machine with an explicit memory configuration.
    pub fn machine_with(&self, config: MemConfig) -> SubstMachine {
        SubstMachine::load(&self.program, config)
    }

    /// Creates an environment-backend machine loaded with this program.
    pub fn env_machine(&self) -> EnvMachine {
        EnvMachine::load(&self.program, self.config)
    }

    /// Creates a machine on the given backend — the uniform,
    /// backend-agnostic constructor (see [`Machine`]).
    pub fn machine_for(&self, backend: Backend) -> Box<dyn Machine> {
        backend.load(&self.program, self.config)
    }

    /// Runs the program to completion on the selected [`Backend`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::Runtime`] on a stuck state (impossible for
    /// typechecked programs, per progress) or [`PipelineError::OutOfFuel`].
    pub fn run(&self, fuel: u64) -> Result<Run, PipelineError> {
        self.run_inner(
            self.config,
            self.backend,
            self.observer.clone(),
            self.step_interval,
            fuel,
            0,
            AuditMode::default(),
            None,
            true,
        )
    }

    /// Runs the program under the given [`RunOptions`] — backend, memory
    /// settings, fuel, and observer all come from `opts` (its `collector`
    /// field is ignored: this program is already linked).
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_with(&self, opts: &RunOptions) -> Result<Run, PipelineError> {
        self.run_inner(
            opts.mem_config(),
            opts.resolved_backend(),
            opts.observer.clone(),
            opts.step_interval,
            opts.fuel,
            opts.verify_every,
            opts.audit,
            opts.inject,
            opts.superinstructions,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        config: MemConfig,
        backend: Backend,
        observer: Option<SharedObserver>,
        step_interval: u64,
        fuel: u64,
        verify_every: u64,
        audit: AuditMode,
        inject: Option<FaultPlan>,
        superinstructions: bool,
    ) -> Result<Run, PipelineError> {
        // One uniform path for every backend, via the `Machine` trait —
        // no per-backend `match` to extend when a fourth backend lands.
        let mut m = backend.load(&self.program, config);
        if let Some(obs) = observer {
            m.set_observer(obs, step_interval);
        }
        m.set_superinstructions(superinstructions);
        m.set_verify_every(verify_every);
        m.set_audit_mode(audit);
        m.set_fault_plan(inject);
        let outcome = m.run(fuel).map_err(PipelineError::Runtime)?;
        let stats = m.stats().clone();
        let pages = m.memory().page_stats();
        match outcome {
            Outcome::Halted(result) => Ok(Run {
                result,
                stats,
                pages,
            }),
            Outcome::InvariantViolation(e) => Err(PipelineError::InvariantViolation(e)),
            Outcome::OutOfFuel => Err(PipelineError::OutOfFuel),
        }
    }

    /// Evaluates the *source* program with the reference evaluator — the
    /// observational oracle the compiled program must agree with.
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors (fuel exhaustion on divergent programs).
    pub fn reference_result(&self, fuel: u64) -> Result<i64, PipelineError> {
        ps_lambda::eval::run_program(&self.source, fuel).map_err(|e| {
            PipelineError::Runtime(ps_gc_lang::error::LangError::new(
                ps_gc_lang::error::ErrorKind::Stuck,
                e.0,
            ))
        })
    }
}

impl Compiled {
    /// Assembles a `Compiled` from externally built parts — used by the
    /// benchmark harness, whose workloads are constructed as source ASTs
    /// (deep live structure needs types of matching depth, which no
    /// hand-written concrete syntax would enumerate).
    pub fn from_parts(
        collector: Collector,
        config: MemConfig,
        source: ps_lambda::syntax::SrcProgram,
        clos: ps_clos::syntax::CProgram,
        program: Program,
    ) -> Compiled {
        Compiled {
            collector,
            config,
            backend: Backend::default_for(config.track_types),
            observer: None,
            step_interval: 0,
            source,
            clos,
            program,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIB: &str = "fun fib (n : int) : int = if0 n then 0 else if0 n - 1 then 1 else fib (n - 1) + fib (n - 2)\n fib 12";

    #[test]
    fn all_collectors_agree_with_the_oracle() {
        for collector in [
            Collector::Basic,
            Collector::Forwarding,
            Collector::Generational,
        ] {
            let compiled = Pipeline::new(collector)
                .region_budget(128)
                .compile(FIB)
                .unwrap();
            compiled.typecheck().unwrap();
            let run = compiled.run(100_000_000).unwrap();
            assert_eq!(run.result, compiled.reference_result(10_000_000).unwrap());
            assert!(run.stats.collections > 0, "{collector}");
        }
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            Pipeline::new(Collector::Basic).compile("fun ("),
            Err(PipelineError::Parse(_))
        ));
    }

    #[test]
    fn type_errors_surface() {
        assert!(matches!(
            Pipeline::new(Collector::Basic).compile("(1, 2) + 3"),
            Err(PipelineError::SourceType(_))
        ));
    }

    #[test]
    fn out_of_fuel_is_distinguished() {
        let compiled = Pipeline::new(Collector::Basic)
            .compile("fun loop (n : int) : int = loop n\n loop 0")
            .unwrap();
        assert!(matches!(compiled.run(1_000), Err(PipelineError::OutOfFuel)));
    }

    #[test]
    fn budget_controls_collection_count() {
        let small = Pipeline::new(Collector::Basic)
            .region_budget(64)
            .compile(FIB)
            .unwrap()
            .run(100_000_000)
            .unwrap();
        let big = Pipeline::new(Collector::Basic)
            .region_budget(1 << 24)
            .compile(FIB)
            .unwrap()
            .run(100_000_000)
            .unwrap();
        assert!(small.stats.collections > big.stats.collections);
        assert_eq!(big.stats.collections, 0);
        assert_eq!(small.result, big.result);
    }

    #[test]
    fn collector_display() {
        assert_eq!(Collector::Basic.to_string(), "basic");
        assert_eq!(Collector::Forwarding.to_string(), "forwarding");
        assert_eq!(Collector::Generational.to_string(), "generational");
    }

    #[test]
    fn collector_and_backend_roundtrip_through_strings() {
        for c in Collector::ALL {
            assert_eq!(c.to_string().parse::<Collector>().unwrap(), c);
            assert_eq!(c.image().name, c.name());
        }
        for b in Backend::ALL {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        assert!("mark-sweep".parse::<Collector>().is_err());
    }

    #[test]
    fn backend_all_is_exhaustive() {
        // Compile-time gate: adding a `Backend` variant without extending
        // `Backend::ALL` (and thus every ALL-driven matrix) fails here.
        fn index_of(b: Backend) -> usize {
            match b {
                Backend::Subst => 0,
                Backend::Env => 1,
                Backend::Bytecode => 2,
            }
        }
        assert_eq!(Backend::ALL.len(), 3);
        for (i, b) in Backend::ALL.into_iter().enumerate() {
            assert_eq!(index_of(b), i, "ALL must list every backend in order");
            // Display and FromStr round-trip through the canonical name.
            assert_eq!(b.to_string(), b.name());
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
        }
        let mut names: Vec<&str> = Backend::ALL.map(Backend::name).to_vec();
        names.dedup();
        assert_eq!(names.len(), Backend::ALL.len(), "names must be unique");
        assert!("jit".parse::<Backend>().is_err());
        assert_eq!("bc".parse::<Backend>().unwrap(), Backend::Bytecode);
    }

    #[test]
    fn run_options_compile_and_run() {
        let opts = RunOptions::builder()
            .collector(Collector::Generational)
            .budget(128)
            .build();
        let compiled = opts.compile(FIB).unwrap();
        let run = compiled.run_with(&opts).unwrap();
        assert_eq!(run.result, 144);
        assert!(run.stats.collections > 0);
        let meta = opts.meta();
        assert_eq!(meta.collector, "generational");
        assert_eq!(meta.backend, "env");
        assert_eq!(meta.budget, 128);
    }

    #[test]
    fn observer_records_a_consistent_event_stream() {
        let recorder = telemetry::Recorder::new().into_shared();
        let opts = RunOptions::builder()
            .budget(96)
            .observer(recorder.clone(), 64)
            .build();
        let run = opts.compile(FIB).unwrap().run_with(&opts).unwrap();
        let rec = recorder.borrow();
        // The event stream and Stats are two views of the same run.
        assert_eq!(rec.metrics.collections, run.stats.collections);
        assert_eq!(rec.metrics.words_reclaimed, run.stats.words_reclaimed);
        assert_eq!(rec.metrics.regions_allocated, run.stats.regions_created);
        assert!(rec.metrics.events > 0);
        assert!(rec.events.iter().any(|e| e.name() == "step"), "sampling on");
        assert!(matches!(
            rec.events.last(),
            Some(telemetry::GcEvent::Halt { value: 144, .. })
        ));
    }

    #[test]
    fn disabled_observer_changes_nothing() {
        let opts = RunOptions::builder().budget(96).build();
        let with = {
            let recorder = telemetry::Recorder::new().into_shared();
            let mut opts = opts.clone();
            opts.observer = Some(recorder.clone());
            opts.compile(FIB).unwrap().run_with(&opts).unwrap()
        };
        let without = opts.compile(FIB).unwrap().run_with(&opts).unwrap();
        assert_eq!(with.result, without.result);
        assert_eq!(with.stats, without.stats);
    }
}
