//! Shared workload builders for the E1–E9 experiments.
//!
//! The paper has no empirical tables; its quantitative claims live in
//! prose (sharing loss without forwarding pointers, the CPS continuation
//! region of §6.1, `only` cost of §4.1/§6.4, §2.2.1's type growth). Each
//! claim gets a benchmark; this module builds the mutator programs they
//! sweep over. It lives in `scavenger` (rather than the benchmark crate)
//! so the offline examples and the Criterion benches share one set of
//! builders.
//!
//! Source programs with *deep live structure* need types of matching depth
//! (the source language is simply typed), so the builders construct source
//! ASTs directly rather than going through the parser.

use ps_ir::symbol::gensym;
use ps_lambda::syntax::{BinOp, Expr, FunDef, SrcProgram, SrcTy};

use crate::{Collector, Compiled, Pipeline};

/// The type of a complete pair-tree of the given depth.
pub fn tree_ty(depth: u32) -> SrcTy {
    if depth == 0 {
        SrcTy::Int
    } else {
        let t = tree_ty(depth - 1);
        SrcTy::prod(t.clone(), t)
    }
}

/// A literal expression building a complete pair-tree of the given depth
/// (`2^depth − 1` heap cells once allocated).
pub fn tree_expr(depth: u32) -> Expr {
    if depth == 0 {
        Expr::Int(1)
    } else {
        Expr::pair(tree_expr(depth - 1), tree_expr(depth - 1))
    }
}

/// `fst (fst (… t))` — reads the leftmost leaf, keeping the tree live.
pub fn leftmost(mut e: Expr, depth: u32) -> Expr {
    for _ in 0..depth {
        e = Expr::Proj(1, e.into());
    }
    e
}

/// A DAG of the given depth: `let d₀ = 7 in let d₁ = (d₀,d₀) in …` —
/// `depth` heap cells, `2^depth` paths. The body receives the root's
/// variable.
pub fn dag_bindings(depth: u32, body: impl FnOnce(ps_ir::Symbol) -> Expr) -> Expr {
    let syms: Vec<ps_ir::Symbol> = (0..=depth).map(|_| gensym("dag")).collect();
    let mut e = body(syms[depth as usize]);
    for i in (1..=depth as usize).rev() {
        e = Expr::let_(
            syms[i],
            Expr::pair(Expr::Var(syms[i - 1]), Expr::Var(syms[i - 1])),
            e,
        );
    }
    Expr::let_(syms[0], Expr::Int(7), e)
}

/// The standard churn loop: `churn k` makes `k` throwaway pair
/// allocations.
pub fn churn_def() -> FunDef {
    let churn = ps_ir::Symbol::intern("churn");
    let k = ps_ir::Symbol::intern("k");
    let junk = gensym("junk");
    FunDef {
        name: churn,
        param: k,
        param_ty: SrcTy::Int,
        ret_ty: SrcTy::Int,
        body: Expr::If0(
            Expr::Var(k).into(),
            Expr::Int(0).into(),
            Expr::let_(
                junk,
                Expr::pair(Expr::Var(k), Expr::Var(k)),
                Expr::app(
                    Expr::Var(churn),
                    Expr::Bin(BinOp::Sub, Expr::Var(k).into(), Expr::Int(1).into()),
                ),
            )
            .into(),
        ),
    }
}

/// A program that keeps a live tree of `depth` while churning `k`
/// allocations (so collections repeatedly copy the tree), then consumes
/// the tree.
pub fn live_tree_churn(depth: u32, k: i64) -> SrcProgram {
    let t = gensym("tree");
    let z = gensym("z");
    let main = Expr::let_(
        t,
        tree_expr(depth),
        Expr::let_(
            z,
            Expr::app(Expr::Var(ps_ir::Symbol::intern("churn")), Expr::Int(k)),
            Expr::Bin(
                BinOp::Add,
                leftmost(Expr::Var(t), depth).into(),
                Expr::Var(z).into(),
            ),
        ),
    );
    SrcProgram {
        defs: vec![churn_def()],
        main,
    }
}

/// A program that keeps a live DAG of `depth` while churning `k`
/// allocations.
pub fn live_dag_churn(depth: u32, k: i64) -> SrcProgram {
    let main = dag_bindings(depth, |root| {
        let z = gensym("z");
        Expr::let_(
            z,
            Expr::app(Expr::Var(ps_ir::Symbol::intern("churn")), Expr::Int(k)),
            Expr::Bin(
                BinOp::Add,
                leftmost(Expr::Var(root), depth).into(),
                Expr::Var(z).into(),
            ),
        )
    });
    SrcProgram {
        defs: vec![churn_def()],
        main,
    }
}

/// Compiles a source AST with the given collector and base region budget.
pub fn compile_ast(p: &SrcProgram, collector: Collector, budget: usize) -> Compiled {
    let cps = ps_clos::cps::cps_program(p).expect("cps");
    let clos = ps_clos::cc::cc_program(&cps).expect("cc");
    let image = collector.image();
    let program = match collector {
        Collector::Basic => ps_trans::basic::translate(&clos, &image),
        Collector::Forwarding => ps_trans::forwarding::translate(&clos, &image),
        Collector::Generational => ps_trans::generational::translate(&clos, &image),
    }
    .expect("translate");
    let config = Pipeline::new(collector).region_budget(budget).config();
    Compiled::from_parts(collector, config, p.clone(), clos, program)
}

/// Runs a compiled program on the substitution backend and returns its
/// machine statistics. (Backend choice is irrelevant for the statistics —
/// the backends agree bit-for-bit — but the E1–E8 experiments predate the
/// environment machine and are kept on the oracle.)
pub fn run_stats(c: &Compiled) -> ps_gc_lang::machine::Stats {
    let mut m = c.machine();
    match m.run(1_000_000_000).expect("runs") {
        ps_gc_lang::machine::Outcome::Halted(_) => m.stats().clone(),
        other => panic!("abnormal outcome: {other:?}"),
    }
}

/// Total words copied into to-space across all collections of a run — the
/// collector's copy work (two-space collectors; for the generational
/// collector use [`gc_alloc_overhead`], since the kept-word total
/// re-counts the persistent old region at every event).
pub fn copy_work(stats: &ps_gc_lang::machine::Stats) -> u64 {
    stats.kept_words_total
}

/// Words allocated *by the collector* during a run: total allocation with
/// the given budget minus the mutator's own allocation (measured with an
/// effectively infinite budget, where no collection runs). Covers copies,
/// promotions and continuation records uniformly across collectors.
pub fn gc_alloc_overhead(p: &SrcProgram, collector: Collector, budget: usize) -> u64 {
    let with_gc = run_stats(&compile_ast(p, collector, budget)).words_allocated;
    let without = run_stats(&compile_ast(p, collector, 1 << 28)).words_allocated;
    with_gc - without
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_programs_run_and_collect() {
        let p = live_tree_churn(4, 60);
        ps_lambda::typecheck::check_program(&p).unwrap();
        let c = compile_ast(&p, Collector::Basic, 128);
        let stats = run_stats(&c);
        assert!(stats.collections > 0);
    }

    #[test]
    fn dag_programs_agree_with_the_oracle() {
        let p = live_dag_churn(6, 60);
        ps_lambda::typecheck::check_program(&p).unwrap();
        let expected = ps_lambda::eval::run_program(&p, 1_000_000).unwrap();
        for collector in [Collector::Basic, Collector::Forwarding] {
            let c = compile_ast(&p, collector, 128);
            let run = c.run(1_000_000_000).unwrap();
            assert_eq!(run.result, expected);
            assert!(run.stats.collections > 0, "{collector}");
        }
    }

    #[test]
    fn dag_sharing_shows_in_copy_work() {
        // Basic copies the DAG as a tree (≈2^d cells per collection);
        // forwarding copies d cells.
        let p = live_dag_churn(10, 40);
        let basic = copy_work(&run_stats(&compile_ast(&p, Collector::Basic, 128)));
        let fwd = copy_work(&run_stats(&compile_ast(&p, Collector::Forwarding, 128)));
        assert!(
            basic > fwd * 4,
            "expected exponential blowup: basic={basic} forwarding={fwd}"
        );
    }

    #[test]
    fn generational_copies_less_with_long_lived_data() {
        let p = live_tree_churn(6, 200);
        let basic = gc_alloc_overhead(&p, Collector::Basic, 160);
        let gener = gc_alloc_overhead(&p, Collector::Generational, 160);
        assert!(
            gener < basic,
            "generational should copy the long-lived tree once: gen={gener} basic={basic}"
        );
    }

    #[test]
    fn tree_ty_and_expr_agree() {
        let p = SrcProgram {
            defs: vec![],
            main: leftmost(tree_expr(5), 5),
        };
        ps_lambda::typecheck::check_program(&p).unwrap();
        assert_eq!(ps_lambda::eval::run_program(&p, 100_000).unwrap(), 1);
        assert_eq!(tree_ty(2), SrcTy::prod(tree_ty(1), tree_ty(1)));
    }
}
