//! Abstract syntax of the source language (§3's starting point).
//!
//! The paper compiles "the simply typed λ-calculus"; to write interesting
//! mutators we flesh it out minimally: integers with arithmetic and `if0`,
//! pairs, first-class functions, `let`, and mutually recursive top-level
//! function definitions (which λCLOS's `letrec` expects anyway). None of
//! this adds type constructors beyond the paper's `Int | τ×τ | τ→τ`
//! grammar, so the tag language and the collectors are untouched.

use std::fmt;
use std::rc::Rc;

use ps_ir::Symbol;

/// A source type `τ ::= int | τ × τ | τ → τ`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SrcTy {
    Int,
    Prod(Rc<SrcTy>, Rc<SrcTy>),
    Arrow(Rc<SrcTy>, Rc<SrcTy>),
}

impl SrcTy {
    /// Convenience constructor for `τ₁ × τ₂`.
    pub fn prod(a: SrcTy, b: SrcTy) -> SrcTy {
        SrcTy::Prod(Rc::new(a), Rc::new(b))
    }

    /// Convenience constructor for `τ₁ → τ₂`.
    pub fn arrow(a: SrcTy, b: SrcTy) -> SrcTy {
        SrcTy::Arrow(Rc::new(a), Rc::new(b))
    }

    /// Size in constructors.
    pub fn size(&self) -> usize {
        match self {
            SrcTy::Int => 1,
            SrcTy::Prod(a, b) | SrcTy::Arrow(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for SrcTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrcTy::Int => write!(f, "int"),
            SrcTy::Prod(a, b) => write!(f, "({a} * {b})"),
            SrcTy::Arrow(a, b) => write!(f, "({a} -> {b})"),
        }
    }
}

/// Binary integer primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
}

impl BinOp {
    /// Applies the primitive with wrapping semantics.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinOp::Add => write!(f, "+"),
            BinOp::Sub => write!(f, "-"),
            BinOp::Mul => write!(f, "*"),
        }
    }
}

/// A source expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// An integer literal.
    Int(i64),
    /// A variable (or top-level function name).
    Var(Symbol),
    /// `e₁ ⊕ e₂`.
    Bin(BinOp, Rc<Expr>, Rc<Expr>),
    /// `if0 e then e₁ else e₂`.
    If0(Rc<Expr>, Rc<Expr>, Rc<Expr>),
    /// `(e₁, e₂)`.
    Pair(Rc<Expr>, Rc<Expr>),
    /// `fst e` / `snd e`.
    Proj(u8, Rc<Expr>),
    /// `fn (x : τ) => e` — an anonymous function.
    Lam {
        param: Symbol,
        param_ty: SrcTy,
        body: Rc<Expr>,
    },
    /// `e₁ e₂`.
    App(Rc<Expr>, Rc<Expr>),
    /// `let x = e₁ in e₂`.
    Let {
        x: Symbol,
        rhs: Rc<Expr>,
        body: Rc<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for application.
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Rc::new(f), Rc::new(a))
    }

    /// Convenience constructor for `let`.
    pub fn let_(x: Symbol, rhs: Expr, body: Expr) -> Expr {
        Expr::Let {
            x,
            rhs: Rc::new(rhs),
            body: Rc::new(body),
        }
    }

    /// Convenience constructor for pairs.
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::Pair(Rc::new(a), Rc::new(b))
    }

    /// Size in AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Var(_) => 1,
            Expr::Bin(_, a, b) | Expr::Pair(a, b) | Expr::App(a, b) => 1 + a.size() + b.size(),
            Expr::If0(a, b, c) => 1 + a.size() + b.size() + c.size(),
            Expr::Proj(_, a) => 1 + a.size(),
            Expr::Lam { body, .. } => 1 + body.size(),
            Expr::Let { rhs, body, .. } => 1 + rhs.size() + body.size(),
        }
    }
}

/// A top-level function definition `fun f (x : τ) : τ' = e`. Top-level
/// functions are mutually recursive.
#[derive(Clone, Debug, PartialEq)]
pub struct FunDef {
    pub name: Symbol,
    pub param: Symbol,
    pub param_ty: SrcTy,
    pub ret_ty: SrcTy,
    pub body: Expr,
}

impl FunDef {
    /// The function's arrow type.
    pub fn ty(&self) -> SrcTy {
        SrcTy::arrow(self.param_ty.clone(), self.ret_ty.clone())
    }
}

/// A whole source program: function definitions plus a main expression of
/// type `int`.
#[derive(Clone, Debug, PartialEq)]
pub struct SrcProgram {
    pub defs: Vec<FunDef>,
    pub main: Expr,
}

impl SrcProgram {
    /// Total AST size.
    pub fn size(&self) -> usize {
        self.defs.iter().map(|d| d.body.size() + 1).sum::<usize>() + self.main.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn types_display() {
        let t = SrcTy::arrow(SrcTy::Int, SrcTy::prod(SrcTy::Int, SrcTy::Int));
        assert_eq!(t.to_string(), "(int -> (int * int))");
        assert_eq!(t.size(), 5);
    }

    #[test]
    fn expr_sizes() {
        let e = Expr::let_(
            s("x"),
            Expr::Int(1),
            Expr::Bin(
                BinOp::Add,
                Rc::new(Expr::Var(s("x"))),
                Rc::new(Expr::Int(2)),
            ),
        );
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn fundef_type() {
        let d = FunDef {
            name: s("f"),
            param: s("x"),
            param_ty: SrcTy::Int,
            ret_ty: SrcTy::Int,
            body: Expr::Var(s("x")),
        };
        assert_eq!(d.ty(), SrcTy::arrow(SrcTy::Int, SrcTy::Int));
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Mul.apply(-2, 3), -6);
    }
}
