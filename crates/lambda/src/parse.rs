//! Lexer and parser for the source language.
//!
//! Surface syntax (ML-flavoured):
//!
//! ```text
//! fun sum (p : int * int) : int = fst p + snd p
//!
//! let x = (1, 2) in sum x
//! ```
//!
//! * Programs are zero or more `fun f (x : τ) : τ' = e` definitions
//!   (mutually recursive) followed by one main expression.
//! * Application is juxtaposition and binds tighter than arithmetic.
//! * `*` is both type product and multiplication; the two parsers never
//!   overlap.
//!
//! # Examples
//!
//! ```
//! let p = ps_lambda::parse::parse_program("let x = 2 in x * 21").unwrap();
//! assert!(p.defs.is_empty());
//! ```

use std::fmt;

use ps_ir::Symbol;

use crate::syntax::{BinOp, Expr, FunDef, SrcProgram, SrcTy};

/// A parse error with a byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Int(i64),
    Ident(String),
    KwFun,
    KwLet,
    KwIn,
    KwIf0,
    KwThen,
    KwElse,
    KwFn,
    KwFst,
    KwSnd,
    KwInt,
    LParen,
    RParen,
    Comma,
    Colon,
    Star,
    Plus,
    Minus,
    Arrow,
    FatArrow,
    Eq,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn lex(src: &'a str) -> PResult<Vec<(usize, usize, Tok)>> {
        let mut l = Lexer {
            src: src.as_bytes(),
            pos: 0,
        };
        let mut toks = Vec::new();
        loop {
            l.skip_ws();
            if l.pos >= l.src.len() {
                return Ok(toks);
            }
            let start = l.pos;
            let line = src[..start].bytes().filter(|b| *b == b'\n').count();
            let tok = l.next_tok()?;
            toks.push((start, line, tok));
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Line comments: `-- ...`.
            if self.pos + 1 < self.src.len() && &self.src[self.pos..self.pos + 2] == b"--" {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn next_tok(&mut self) -> PResult<Tok> {
        let c = self.src[self.pos];
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b':' => {
                self.pos += 1;
                Ok(Tok::Colon)
            }
            b'*' => {
                self.pos += 1;
                Ok(Tok::Star)
            }
            b'+' => {
                self.pos += 1;
                Ok(Tok::Plus)
            }
            b'-' => {
                if self.peek(1) == Some(b'>') {
                    self.pos += 2;
                    Ok(Tok::Arrow)
                } else {
                    self.pos += 1;
                    Ok(Tok::Minus)
                }
            }
            b'=' => {
                if self.peek(1) == Some(b'>') {
                    self.pos += 2;
                    Ok(Tok::FatArrow)
                } else {
                    self.pos += 1;
                    Ok(Tok::Eq)
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                text.parse::<i64>().map(Tok::Int).map_err(|_| ParseError {
                    pos: start,
                    msg: format!("integer literal {text} out of range"),
                })
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric()
                        || self.src[self.pos] == b'_'
                        || self.src[self.pos] == b'\'')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                Ok(match text {
                    "fun" => Tok::KwFun,
                    "let" => Tok::KwLet,
                    "in" => Tok::KwIn,
                    "if0" => Tok::KwIf0,
                    "then" => Tok::KwThen,
                    "else" => Tok::KwElse,
                    "fn" => Tok::KwFn,
                    "fst" => Tok::KwFst,
                    "snd" => Tok::KwSnd,
                    "int" => Tok::KwInt,
                    _ => Tok::Ident(text.to_owned()),
                })
            }
            other => Err(ParseError {
                pos: self.pos,
                msg: format!("unexpected character {:?}", other as char),
            }),
        }
    }

    fn peek(&self, k: usize) -> Option<u8> {
        self.src.get(self.pos + k).copied()
    }
}

struct Parser {
    toks: Vec<(usize, usize, Tok)>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, _, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.idx)
            .or_else(|| self.toks.last())
            .map(|(p, _, _)| *p)
            .unwrap_or(0)
    }

    fn line(&self, idx: usize) -> usize {
        self.toks.get(idx).map(|(_, l, _)| *l).unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, _, t)| t.clone());
        self.idx += 1;
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> PResult<()> {
        match self.peek() {
            Some(t) if *t == want => {
                self.idx += 1;
                Ok(())
            }
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn ident(&mut self) -> PResult<Symbol> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(Symbol::intern(&s)),
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    // ----- types ---------------------------------------------------------

    fn ty(&mut self) -> PResult<SrcTy> {
        let lhs = self.ty_prod()?;
        if self.peek() == Some(&Tok::Arrow) {
            self.idx += 1;
            let rhs = self.ty()?;
            Ok(SrcTy::arrow(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn ty_prod(&mut self) -> PResult<SrcTy> {
        let lhs = self.ty_atom()?;
        if self.peek() == Some(&Tok::Star) {
            self.idx += 1;
            let rhs = self.ty_prod()?;
            Ok(SrcTy::prod(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn ty_atom(&mut self) -> PResult<SrcTy> {
        match self.bump() {
            Some(Tok::KwInt) => Ok(SrcTy::Int),
            Some(Tok::LParen) => {
                let t = self.ty()?;
                self.expect(Tok::RParen, ")")?;
                Ok(t)
            }
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected a type, found {other:?}"),
            }),
        }
    }

    // ----- expressions -----------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(Tok::KwLet) => {
                self.idx += 1;
                let x = self.ident()?;
                self.expect(Tok::Eq, "=")?;
                let rhs = self.expr()?;
                self.expect(Tok::KwIn, "in")?;
                let body = self.expr()?;
                Ok(Expr::let_(x, rhs, body))
            }
            Some(Tok::KwIf0) => {
                self.idx += 1;
                let c = self.expr()?;
                self.expect(Tok::KwThen, "then")?;
                let t = self.expr()?;
                self.expect(Tok::KwElse, "else")?;
                let e = self.expr()?;
                Ok(Expr::If0(c.into(), t.into(), e.into()))
            }
            Some(Tok::KwFn) => {
                self.idx += 1;
                self.expect(Tok::LParen, "(")?;
                let param = self.ident()?;
                self.expect(Tok::Colon, ":")?;
                let param_ty = self.ty()?;
                self.expect(Tok::RParen, ")")?;
                self.expect(Tok::FatArrow, "=>")?;
                let body = self.expr()?;
                Ok(Expr::Lam {
                    param,
                    param_ty,
                    body: body.into(),
                })
            }
            _ => self.add_expr(),
        }
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.idx += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, lhs.into(), rhs.into());
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.app_expr()?;
        while self.peek() == Some(&Tok::Star) {
            self.idx += 1;
            let rhs = self.app_expr()?;
            lhs = Expr::Bin(BinOp::Mul, lhs.into(), rhs.into());
        }
        Ok(lhs)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Int(_))
                | Some(Tok::Ident(_))
                | Some(Tok::LParen)
                | Some(Tok::KwFst)
                | Some(Tok::KwSnd)
        )
    }

    fn app_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.atom()?;
        // Layout rule: an application chain only continues on the same
        // line, so a definition body does not swallow the next top-level
        // item. Operator-led continuations (`+`, `*`, ...) still span
        // lines; wrap multi-line arguments in parentheses.
        while self.starts_atom() && self.line(self.idx) == self.line(self.idx - 1) {
            let arg = self.atom()?;
            lhs = Expr::app(lhs, arg);
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> PResult<Expr> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::Int(n)),
            Some(Tok::Ident(s)) => Ok(Expr::Var(Symbol::intern(&s))),
            Some(Tok::KwFst) => Ok(Expr::Proj(1, self.atom()?.into())),
            Some(Tok::KwSnd) => Ok(Expr::Proj(2, self.atom()?.into())),
            Some(Tok::LParen) => {
                let first = self.expr()?;
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.idx += 1;
                        let second = self.expr()?;
                        self.expect(Tok::RParen, ")")?;
                        Ok(Expr::pair(first, second))
                    }
                    _ => {
                        self.expect(Tok::RParen, ")")?;
                        Ok(first)
                    }
                }
            }
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected an expression, found {other:?}"),
            }),
        }
    }

    // ----- programs --------------------------------------------------------

    fn fundef(&mut self) -> PResult<FunDef> {
        self.expect(Tok::KwFun, "fun")?;
        let name = self.ident()?;
        self.expect(Tok::LParen, "(")?;
        let param = self.ident()?;
        self.expect(Tok::Colon, ":")?;
        let param_ty = self.ty()?;
        self.expect(Tok::RParen, ")")?;
        self.expect(Tok::Colon, ":")?;
        let ret_ty = self.ty()?;
        self.expect(Tok::Eq, "=")?;
        let body = self.expr()?;
        Ok(FunDef {
            name,
            param,
            param_ty,
            ret_ty,
            body,
        })
    }

    fn program(&mut self) -> PResult<SrcProgram> {
        let mut defs = Vec::new();
        while self.peek() == Some(&Tok::KwFun) {
            defs.push(self.fundef()?);
        }
        let main = self.expr()?;
        if self.idx != self.toks.len() {
            return Err(ParseError {
                pos: self.pos(),
                msg: format!("trailing input: {:?}", self.peek()),
            });
        }
        Ok(SrcProgram { defs, main })
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte position of the first problem.
pub fn parse_program(src: &str) -> PResult<SrcProgram> {
    let toks = Lexer::lex(src)?;
    Parser { toks, idx: 0 }.program()
}

/// Parses a single expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed or trailing input.
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let toks = Lexer::lex(src)?;
    let mut p = Parser { toks, idx: 0 };
    let e = p.expr()?;
    if p.idx != p.toks.len() {
        return Err(ParseError {
            pos: p.pos(),
            msg: "trailing input".to_string(),
        });
    }
    Ok(e)
}

/// Parses a type.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed or trailing input.
pub fn parse_ty(src: &str) -> PResult<SrcTy> {
    let toks = Lexer::lex(src)?;
    let mut p = Parser { toks, idx: 0 };
    let t = p.ty()?;
    if p.idx != p.toks.len() {
        return Err(ParseError {
            pos: p.pos(),
            msg: "trailing input".to_string(),
        });
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn literals_and_vars() {
        assert_eq!(parse_expr("42").unwrap(), Expr::Int(42));
        assert_eq!(parse_expr("x").unwrap(), Expr::Var(s("x")));
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Bin(BinOp::Add, _, rhs) => {
                assert!(matches!(&*rhs, Expr::Bin(BinOp::Mul, _, _)))
            }
            other => panic!("bad parse {other:?}"),
        }
    }

    #[test]
    fn application_binds_tighter_than_arithmetic() {
        // f 1 + 2 parses as (f 1) + 2.
        let e = parse_expr("f 1 + 2").unwrap();
        match e {
            Expr::Bin(BinOp::Add, lhs, _) => assert!(matches!(&*lhs, Expr::App(..))),
            other => panic!("bad parse {other:?}"),
        }
    }

    #[test]
    fn application_is_left_associative() {
        let e = parse_expr("f x y").unwrap();
        match e {
            Expr::App(fx, _) => assert!(matches!(&*fx, Expr::App(..))),
            other => panic!("bad parse {other:?}"),
        }
    }

    #[test]
    fn pairs_and_projections() {
        let e = parse_expr("fst (1, 2)").unwrap();
        assert!(matches!(e, Expr::Proj(1, _)));
        let e = parse_expr("snd (1, (2, 3))").unwrap();
        assert!(matches!(e, Expr::Proj(2, _)));
    }

    #[test]
    fn parenthesized_expr_is_not_a_pair() {
        assert_eq!(parse_expr("(5)").unwrap(), Expr::Int(5));
    }

    #[test]
    fn let_and_if0() {
        let e = parse_expr("let x = 1 in if0 x then 2 else 3").unwrap();
        assert!(matches!(e, Expr::Let { .. }));
    }

    #[test]
    fn lambda() {
        let e = parse_expr("fn (x : int) => x + 1").unwrap();
        match e {
            Expr::Lam { param_ty, .. } => assert_eq!(param_ty, SrcTy::Int),
            other => panic!("bad parse {other:?}"),
        }
    }

    #[test]
    fn types_parse() {
        assert_eq!(parse_ty("int").unwrap(), SrcTy::Int);
        assert_eq!(
            parse_ty("int * int -> int").unwrap(),
            SrcTy::arrow(SrcTy::prod(SrcTy::Int, SrcTy::Int), SrcTy::Int)
        );
        // Arrows are right associative.
        assert_eq!(
            parse_ty("int -> int -> int").unwrap(),
            SrcTy::arrow(SrcTy::Int, SrcTy::arrow(SrcTy::Int, SrcTy::Int))
        );
    }

    #[test]
    fn programs_with_definitions() {
        let p = parse_program(
            "fun double (x : int) : int = x + x\n\
             fun quad (x : int) : int = double (double x)\n\
             quad 4",
        )
        .unwrap();
        assert_eq!(p.defs.len(), 2);
        assert_eq!(p.defs[1].name, s("quad"));
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("-- a comment\n1 + 1 -- trailing").unwrap();
        assert!(p.defs.is_empty());
    }

    #[test]
    fn error_positions() {
        let err = parse_expr("1 + ").unwrap_err();
        assert!(err.msg.contains("expected an expression"));
        let err = parse_program("fun f (x : int) = x  1").unwrap_err();
        assert!(err.msg.contains("expected"));
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_expr("1 2").is_err() || matches!(parse_expr("1 2"), Ok(Expr::App(..))));
        assert!(parse_expr("1 )").is_err());
    }
}
