//! # ps-lambda — the source language
//!
//! The simply typed λ-calculus that *Principled Scavenging* compiles and
//! garbage-collects (§3), fleshed out with integers, `if0`, pairs and
//! mutually recursive top-level functions so that mutators can compute.
//!
//! * [`syntax`] — AST,
//! * [`parse`] — an ML-flavoured surface syntax,
//! * [`typecheck`] — a synthesis-directed checker,
//! * [`eval`] — the reference evaluator (the observational oracle for the
//!   whole compilation pipeline).
//!
//! # Examples
//!
//! ```
//! let p = ps_lambda::parse::parse_program(
//!     "fun double (x : int) : int = x + x\n double 21",
//! )
//! .unwrap();
//! ps_lambda::typecheck::check_program(&p).unwrap();
//! assert_eq!(ps_lambda::eval::run_program(&p, 1000).unwrap(), 42);
//! ```

pub mod eval;
pub mod parse;
pub mod print;
pub mod syntax;
pub mod typecheck;
