//! Pretty-printing of source programs back to concrete syntax.
//!
//! The printer is exact: `parse(print(p))` re-reads to an α-identical
//! program (gensym'd binders print with their unique suffix replaced by a
//! sanitized form, so even machine-generated ASTs round-trip). This is
//! property-tested in `tests/`.

use ps_ir::{Doc, Symbol};

use crate::syntax::{BinOp, Expr, FunDef, SrcProgram, SrcTy};

/// Renders an identifier, sanitizing gensym suffixes (`x%42` → `x_42`)
/// so the result lexes.
fn ident(s: Symbol) -> String {
    s.as_str().replace('%', "_g")
}

/// Renders a type.
pub fn ty(t: &SrcTy) -> Doc {
    ty_prec(t, 0)
}

fn ty_prec(t: &SrcTy, prec: u8) -> Doc {
    let d = match t {
        SrcTy::Int => Doc::text("int"),
        // `*` binds tighter than `->`; both are right associative in the
        // parser, so print right-nested occurrences bare and left-nested
        // ones parenthesized.
        SrcTy::Prod(a, b) => ty_prec(a, 2).append(Doc::text(" * ")).append(ty_prec(b, 1)),
        SrcTy::Arrow(a, b) => ty_prec(a, 1)
            .append(Doc::text(" -> "))
            .append(ty_prec(b, 0)),
    };
    let needs = match t {
        SrcTy::Prod(..) => prec >= 2,
        SrcTy::Arrow(..) => prec >= 1,
        SrcTy::Int => false,
    };
    if needs {
        Doc::text("(").append(d).append(Doc::text(")"))
    } else {
        d
    }
}

/// Expression precedence levels, mirroring the parser:
/// 0 = expr (let/if0/fn), 1 = additive, 2 = multiplicative,
/// 3 = application, 4 = atom.
fn expr_prec(e: &Expr, prec: u8) -> Doc {
    let d = match e {
        Expr::Int(n) => {
            if *n < 0 {
                // The lexer has no negative literals; print as (0 - n).
                return Doc::text(format!("(0 - {})", n.unsigned_abs()));
            }
            Doc::text(n.to_string())
        }
        Expr::Var(x) => Doc::text(ident(*x)),
        Expr::Bin(op, a, b) => {
            let (lp, rp) = match op {
                BinOp::Add | BinOp::Sub => (1, 2),
                BinOp::Mul => (2, 3),
            };
            expr_prec(a, lp)
                .append(Doc::text(format!(" {op} ")))
                .append(expr_prec(b, rp))
        }
        Expr::If0(c, t, f) => Doc::text("if0 ")
            .append(expr_prec(c, 0))
            .append(Doc::text(" then "))
            .append(expr_prec(t, 0))
            .append(Doc::text(" else "))
            .append(expr_prec(f, 0)),
        Expr::Pair(a, b) => {
            return Doc::text("(")
                .append(expr_prec(a, 0))
                .append(Doc::text(", "))
                .append(expr_prec(b, 0))
                .append(Doc::text(")"))
        }
        Expr::Proj(i, a) => {
            Doc::text(if *i == 1 { "fst " } else { "snd " }).append(expr_prec(a, 4))
        }
        Expr::Lam {
            param,
            param_ty,
            body,
        } => Doc::text(format!("fn ({} : ", ident(*param)))
            .append(ty(param_ty))
            .append(Doc::text(") => "))
            .append(expr_prec(body, 0)),
        Expr::App(f, a) => expr_prec(f, 3)
            .append(Doc::text(" "))
            .append(expr_prec(a, 4)),
        Expr::Let { x, rhs, body } => Doc::text(format!("let {} = ", ident(*x)))
            .append(expr_prec(rhs, 0))
            .append(Doc::text(" in "))
            .append(expr_prec(body, 0)),
    };
    let needs = match e {
        Expr::Bin(BinOp::Add | BinOp::Sub, ..) => prec >= 2,
        Expr::Bin(BinOp::Mul, ..) => prec >= 3,
        Expr::App(..) | Expr::Proj(..) => prec >= 4,
        Expr::If0(..) | Expr::Lam { .. } | Expr::Let { .. } => prec >= 1,
        Expr::Int(_) | Expr::Var(_) | Expr::Pair(..) => false,
    };
    if needs {
        Doc::text("(").append(d).append(Doc::text(")"))
    } else {
        d
    }
}

/// Renders an expression.
pub fn expr(e: &Expr) -> Doc {
    expr_prec(e, 0)
}

/// Renders a function definition.
pub fn fun_def(d: &FunDef) -> Doc {
    Doc::text(format!("fun {} ({} : ", ident(d.name), ident(d.param)))
        .append(ty(&d.param_ty))
        .append(Doc::text(") : "))
        .append(ty(&d.ret_ty))
        .append(Doc::text(" = "))
        .append(expr(&d.body))
}

/// Renders a whole program. The result re-parses to an α-identical
/// program.
pub fn program(p: &SrcProgram) -> String {
    let mut doc = Doc::nil();
    for d in &p.defs {
        doc = doc.append(fun_def(d)).append(Doc::hardline());
    }
    doc.append(expr(&p.main)).render(100_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_expr, parse_program, parse_ty};

    #[test]
    fn types_roundtrip() {
        for src in [
            "int",
            "int * int",
            "int -> int",
            "int * int -> int",
            "(int -> int) * int",
            "int -> int -> int",
            "(int -> int) -> int",
            "(int * int) * int",
            "int * (int * int)",
        ] {
            let t = parse_ty(src).unwrap();
            let printed = ty(&t).render(10_000);
            let back =
                parse_ty(&printed).unwrap_or_else(|e| panic!("{src} printed as {printed}: {e}"));
            assert_eq!(t, back, "{src} → {printed}");
        }
    }

    #[test]
    fn exprs_roundtrip() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "1 - 2 - 3",
            "1 - (2 - 3)",
            "fst (1, 2) + snd (3, 4)",
            "f x y",
            "f (x y)",
            "let x = 1 in x + x",
            "if0 0 then 1 else 2",
            "(if0 0 then 1 else 2) + 3",
            "fn (x : int) => x + 1",
            "(fn (x : int) => x) 5",
            "fst (fn (x : int) => x, 3) 9",
        ] {
            // Provide free variables via a wrapping program when needed.
            let e = parse_expr(src).unwrap();
            let printed = expr(&e).render(10_000);
            let back = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("{src} printed as {printed}: {err}"));
            assert_eq!(e, back, "{src} → {printed}");
        }
    }

    #[test]
    fn negative_literals_print_parseably() {
        let e = Expr::Int(-7);
        let printed = expr(&e).render(100);
        let back = parse_expr(&printed).unwrap();
        assert_eq!(
            crate::eval::run_program(
                &crate::syntax::SrcProgram {
                    defs: vec![],
                    main: back
                },
                100
            )
            .unwrap(),
            -7
        );
    }

    #[test]
    fn programs_roundtrip() {
        let src = "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\nfact 5";
        let p = parse_program(src).unwrap();
        let printed = program(&p);
        let back = parse_program(&printed).unwrap();
        assert_eq!(p, back, "printed:\n{printed}");
    }

    #[test]
    fn gensym_names_are_sanitized() {
        let x = ps_ir::symbol::gensym("tmp");
        let e = Expr::let_(x, Expr::Int(1), Expr::Var(x));
        let printed = expr(&e).render(1000);
        assert!(!printed.contains('%'));
        assert!(parse_expr(&printed).is_ok(), "{printed}");
    }
}
