//! Reference evaluator for the source language.
//!
//! A direct, environment-based, call-by-value big-step evaluator. It is the
//! *observational oracle* for the whole pipeline: a compiled λGC program —
//! through any number of garbage collections — must halt with the same
//! integer this evaluator produces.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use ps_ir::Symbol;

use crate::syntax::{Expr, FunDef, SrcProgram, SrcTy};

/// A runtime value.
#[derive(Clone, Debug)]
pub enum SrcValue {
    Int(i64),
    Pair(Rc<SrcValue>, Rc<SrcValue>),
    /// A closure: parameter, body, captured environment.
    Closure {
        param: Symbol,
        body: Rc<Expr>,
        env: Env,
    },
    /// A top-level (recursive) function.
    TopFun(usize),
}

impl SrcValue {
    /// Extracts an integer.
    ///
    /// # Errors
    ///
    /// Fails if the value is not an integer.
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            SrcValue::Int(n) => Ok(*n),
            other => Err(EvalError(format!("expected an integer, got {other:?}"))),
        }
    }
}

/// The evaluation environment (persistently shared).
pub type Env = Rc<HashMap<Symbol, SrcValue>>;

/// A runtime error (impossible for well-typed terms; exists because the
/// evaluator is independent of the typechecker).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// An evaluator for a fixed program (holding its top-level definitions).
pub struct Evaluator<'a> {
    defs: &'a [FunDef],
    /// Remaining call budget, to keep property tests total.
    fuel: u64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with the given call-budget.
    pub fn new(defs: &'a [FunDef], fuel: u64) -> Evaluator<'a> {
        Evaluator { defs, fuel }
    }

    fn lookup_def(&self, name: Symbol) -> Option<usize> {
        self.defs.iter().position(|d| d.name == name)
    }

    /// Evaluates an expression.
    ///
    /// # Errors
    ///
    /// Fails on unbound variables, type-incorrect operations (impossible
    /// after typechecking) or fuel exhaustion.
    pub fn eval(&mut self, env: &Env, e: &Expr) -> Result<SrcValue, EvalError> {
        match e {
            Expr::Int(n) => Ok(SrcValue::Int(*n)),
            Expr::Var(x) => {
                if let Some(v) = env.get(x) {
                    Ok(v.clone())
                } else if let Some(i) = self.lookup_def(*x) {
                    Ok(SrcValue::TopFun(i))
                } else {
                    Err(EvalError(format!("unbound variable {x}")))
                }
            }
            Expr::Bin(op, a, b) => {
                let a = self.eval(env, a)?.as_int()?;
                let b = self.eval(env, b)?.as_int()?;
                Ok(SrcValue::Int(op.apply(a, b)))
            }
            Expr::If0(c, t, f) => {
                if self.eval(env, c)?.as_int()? == 0 {
                    self.eval(env, t)
                } else {
                    self.eval(env, f)
                }
            }
            Expr::Pair(a, b) => Ok(SrcValue::Pair(
                Rc::new(self.eval(env, a)?),
                Rc::new(self.eval(env, b)?),
            )),
            Expr::Proj(i, a) => match self.eval(env, a)? {
                SrcValue::Pair(x, y) => Ok(if *i == 1 { (*x).clone() } else { (*y).clone() }),
                other => Err(EvalError(format!("projection of non-pair {other:?}"))),
            },
            Expr::Lam { param, body, .. } => Ok(SrcValue::Closure {
                param: *param,
                body: body.clone(),
                env: env.clone(),
            }),
            Expr::App(f, a) => {
                let fv = self.eval(env, f)?;
                let av = self.eval(env, a)?;
                self.apply(fv, av)
            }
            Expr::Let { x, rhs, body } => {
                let rv = self.eval(env, rhs)?;
                let mut env2 = (**env).clone();
                env2.insert(*x, rv);
                self.eval(&Rc::new(env2), body)
            }
        }
    }

    /// Applies a function value.
    ///
    /// # Errors
    ///
    /// Fails when `f` is not a function or the fuel budget is exhausted.
    pub fn apply(&mut self, f: SrcValue, arg: SrcValue) -> Result<SrcValue, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError("out of fuel".to_string()));
        }
        self.fuel -= 1;
        match f {
            SrcValue::Closure { param, body, env } => {
                let mut env2 = (*env).clone();
                env2.insert(param, arg);
                self.eval(&Rc::new(env2), &body)
            }
            SrcValue::TopFun(i) => {
                let def = &self.defs[i];
                let mut env2 = HashMap::new();
                env2.insert(def.param, arg);
                let body = def.body.clone();
                self.eval(&Rc::new(env2), &body)
            }
            other => Err(EvalError(format!("application of non-function {other:?}"))),
        }
    }
}

/// Runs a whole program to an integer result.
///
/// # Errors
///
/// Fails on runtime errors (impossible for typechecked programs), a
/// non-integer result, or fuel exhaustion.
///
/// # Examples
///
/// ```
/// let p = ps_lambda::parse::parse_program(
///     "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 5",
/// )
/// .unwrap();
/// assert_eq!(ps_lambda::eval::run_program(&p, 10_000).unwrap(), 120);
/// ```
pub fn run_program(p: &SrcProgram, fuel: u64) -> Result<i64, EvalError> {
    let mut ev = Evaluator::new(&p.defs, fuel);
    let env: Env = Rc::new(HashMap::new());
    ev.eval(&env, &p.main)?.as_int()
}

/// The declared type of a definition body parameter — re-exported helper
/// used by the CPS converter's tests.
pub fn def_param_ty(d: &FunDef) -> &SrcTy {
    &d.param_ty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn run(src: &str) -> i64 {
        let p = parse_program(src).unwrap();
        crate::typecheck::check_program(&p).unwrap();
        run_program(&p, 1_000_000).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("1 + 2 * 3"), 7);
        assert_eq!(run("10 - 3 - 2"), 5, "subtraction is left associative");
    }

    #[test]
    fn pairs() {
        assert_eq!(run("fst (1, 2) + snd (3, 4)"), 5);
        assert_eq!(run("snd (fst ((1, 2), 3))"), 2);
    }

    #[test]
    fn let_shadowing() {
        assert_eq!(run("let x = 1 in let x = x + 1 in x"), 2);
    }

    #[test]
    fn factorial() {
        assert_eq!(
            run("fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 10"),
            3_628_800
        );
    }

    #[test]
    fn fibonacci() {
        assert_eq!(
            run("fun fib (n : int) : int = if0 n then 0 else if0 n - 1 then 1 else fib (n - 1) + fib (n - 2)\n fib 15"),
            610
        );
    }

    #[test]
    fn mutual_recursion() {
        assert_eq!(
            run("fun even (n : int) : int = if0 n then 1 else odd (n - 1)\n\
                 fun odd (n : int) : int = if0 n then 0 else even (n - 1)\n\
                 even 10 + odd 10"),
            1
        );
    }

    #[test]
    fn closures_capture() {
        assert_eq!(run("let y = 10 in (fn (x : int) => x + y) 5"), 15);
    }

    #[test]
    fn higher_order() {
        assert_eq!(
            run(
                "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\n\
                 (twice (fn (y : int) => y * 2)) 3"
            ),
            12
        );
    }

    #[test]
    fn church_style_pairs_of_functions() {
        assert_eq!(
            run(
                "fun applyp (p : (int -> int) * int) : int = (fst p) (snd p)\n\
                 applyp ((fn (x : int) => x + 1), 41)"
            ),
            42
        );
    }

    #[test]
    fn fuel_exhaustion() {
        let p = parse_program("fun loop (n : int) : int = loop n\n loop 0").unwrap();
        assert!(run_program(&p, 100).is_err());
    }
}
