//! Typechecker for the source language.
//!
//! Synthesis-directed: every binder is annotated, so types are inferred
//! bottom-up with no unification.

use std::collections::HashMap;
use std::fmt;

use ps_ir::Symbol;

use crate::syntax::{Expr, SrcProgram, SrcTy};

/// A source type error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

type TResult<T> = Result<T, TypeError>;

/// Infers the type of an expression under the given environment.
///
/// # Errors
///
/// Returns a [`TypeError`] naming the mismatch.
pub fn infer(env: &HashMap<Symbol, SrcTy>, e: &Expr) -> TResult<SrcTy> {
    match e {
        Expr::Int(_) => Ok(SrcTy::Int),
        Expr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| TypeError(format!("unbound variable {x}"))),
        Expr::Bin(op, a, b) => {
            expect(env, a, &SrcTy::Int, &format!("left operand of {op}"))?;
            expect(env, b, &SrcTy::Int, &format!("right operand of {op}"))?;
            Ok(SrcTy::Int)
        }
        Expr::If0(c, t, f) => {
            expect(env, c, &SrcTy::Int, "if0 condition")?;
            let tt = infer(env, t)?;
            let ft = infer(env, f)?;
            if tt != ft {
                return Err(TypeError(format!(
                    "if0 branches disagree: {tt} versus {ft}"
                )));
            }
            Ok(tt)
        }
        Expr::Pair(a, b) => Ok(SrcTy::prod(infer(env, a)?, infer(env, b)?)),
        Expr::Proj(i, a) => match infer(env, a)? {
            SrcTy::Prod(x, y) => Ok(if *i == 1 { (*x).clone() } else { (*y).clone() }),
            other => Err(TypeError(format!("projection of non-pair type {other}"))),
        },
        Expr::Lam {
            param,
            param_ty,
            body,
        } => {
            let mut env2 = env.clone();
            env2.insert(*param, param_ty.clone());
            let ret = infer(&env2, body)?;
            Ok(SrcTy::arrow(param_ty.clone(), ret))
        }
        Expr::App(f, a) => match infer(env, f)? {
            SrcTy::Arrow(dom, cod) => {
                let at = infer(env, a)?;
                if at != *dom {
                    return Err(TypeError(format!(
                        "argument type {at} does not match parameter type {dom}"
                    )));
                }
                Ok((*cod).clone())
            }
            other => Err(TypeError(format!(
                "application of non-function type {other}"
            ))),
        },
        Expr::Let { x, rhs, body } => {
            let rt = infer(env, rhs)?;
            let mut env2 = env.clone();
            env2.insert(*x, rt);
            infer(&env2, body)
        }
    }
}

fn expect(env: &HashMap<Symbol, SrcTy>, e: &Expr, want: &SrcTy, what: &str) -> TResult<()> {
    let got = infer(env, e)?;
    if &got == want {
        Ok(())
    } else {
        Err(TypeError(format!("{what} has type {got}, expected {want}")))
    }
}

/// Builds the top-level environment of a program (its function
/// signatures).
pub fn top_env(p: &SrcProgram) -> HashMap<Symbol, SrcTy> {
    p.defs.iter().map(|d| (d.name, d.ty())).collect()
}

/// Checks a whole program: each definition's body against its declared
/// return type, and the main expression at type `int`.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
pub fn check_program(p: &SrcProgram) -> TResult<()> {
    let top = top_env(p);
    let mut names = std::collections::HashSet::new();
    for d in &p.defs {
        if !names.insert(d.name) {
            return Err(TypeError(format!("duplicate function {}", d.name)));
        }
        let mut env = top.clone();
        env.insert(d.param, d.param_ty.clone());
        let got = infer(&env, &d.body)?;
        if got != d.ret_ty {
            return Err(TypeError(format!(
                "function {} declares return type {} but its body has type {got}",
                d.name, d.ret_ty
            )));
        }
    }
    expect(&top, &p.main, &SrcTy::Int, "main expression")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_expr, parse_program};

    fn infer_str(src: &str) -> TResult<SrcTy> {
        infer(&HashMap::new(), &parse_expr(src).unwrap())
    }

    #[test]
    fn literals() {
        assert_eq!(infer_str("42").unwrap(), SrcTy::Int);
    }

    #[test]
    fn pairs_and_projections() {
        assert_eq!(
            infer_str("(1, (2, 3))").unwrap(),
            SrcTy::prod(SrcTy::Int, SrcTy::prod(SrcTy::Int, SrcTy::Int))
        );
        assert_eq!(infer_str("fst (1, 2)").unwrap(), SrcTy::Int);
        assert!(infer_str("fst 1").is_err());
    }

    #[test]
    fn lambdas_and_application() {
        assert_eq!(
            infer_str("fn (x : int) => x + 1").unwrap(),
            SrcTy::arrow(SrcTy::Int, SrcTy::Int)
        );
        assert_eq!(infer_str("(fn (x : int) => x + 1) 2").unwrap(), SrcTy::Int);
        assert!(infer_str("(fn (x : int) => x) (1, 2)").is_err());
        assert!(infer_str("1 2").is_err());
    }

    #[test]
    fn if0_branches_must_agree() {
        assert!(infer_str("if0 0 then 1 else (1, 2)").is_err());
        assert_eq!(infer_str("if0 0 then 1 else 2").unwrap(), SrcTy::Int);
        assert!(infer_str("if0 (1, 1) then 1 else 2").is_err());
    }

    #[test]
    fn unbound_variable() {
        assert!(infer_str("mystery").is_err());
    }

    #[test]
    fn recursive_program_checks() {
        let p =
            parse_program("fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 5")
                .unwrap();
        check_program(&p).unwrap();
    }

    #[test]
    fn mutual_recursion_checks() {
        let p = parse_program(
            "fun even (n : int) : int = if0 n then 1 else odd (n - 1)\n\
             fun odd (n : int) : int = if0 n then 0 else even (n - 1)\n\
             even 10",
        )
        .unwrap();
        check_program(&p).unwrap();
    }

    #[test]
    fn wrong_return_type_rejected() {
        let p = parse_program("fun f (x : int) : int * int = x\n 0").unwrap();
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn main_must_be_int() {
        let p = parse_program("(1, 2)").unwrap();
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn duplicate_function_names_rejected() {
        let p = parse_program("fun f (x : int) : int = x\nfun f (x : int) : int = x\n 0").unwrap();
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn higher_order_functions() {
        let p = parse_program(
            "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\n\
             (twice (fn (y : int) => y + 3)) 1",
        )
        .unwrap();
        check_program(&p).unwrap();
    }
}
