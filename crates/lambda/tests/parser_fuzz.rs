//! Parser robustness: arbitrary input never panics the lexer/parser, and
//! whatever parses also typechecks-or-errors without panicking.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: the parser returns Ok or Err, never panics.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC*") {
        let _ = ps_lambda::parse::parse_program(&s);
        let _ = ps_lambda::parse::parse_expr(&s);
        let _ = ps_lambda::parse::parse_ty(&s);
    }

    /// Token soup from the language's own alphabet — much more likely to
    /// get deep into the parser.
    #[test]
    fn parser_total_on_token_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("fun".to_string()), Just("let".to_string()), Just("in".to_string()),
            Just("if0".to_string()), Just("then".to_string()), Just("else".to_string()),
            Just("fn".to_string()), Just("fst".to_string()), Just("snd".to_string()),
            Just("int".to_string()), Just("(".to_string()), Just(")".to_string()),
            Just(",".to_string()), Just(":".to_string()), Just("*".to_string()),
            Just("+".to_string()), Just("-".to_string()), Just("->".to_string()),
            Just("=>".to_string()), Just("=".to_string()), Just("x".to_string()),
            Just("f".to_string()), Just("42".to_string()), Just("\n".to_string()),
        ],
        0..64,
    )) {
        let s = words.join(" ");
        if let Ok(p) = ps_lambda::parse::parse_program(&s) {
            // Whatever parses must typecheck or fail cleanly; if it
            // typechecks it must evaluate or run out of fuel cleanly.
            if ps_lambda::typecheck::check_program(&p).is_ok() {
                let _ = ps_lambda::eval::run_program(&p, 10_000);
            }
        }
    }
}
