//! Property-based tests over randomly generated well-typed source
//! programs.
//!
//! The generator is type-directed, so every program typechecks by
//! construction, and — being pure simply-typed λ-calculus (no `letrec`) —
//! every program terminates. Each case is run through:
//!
//! * the reference evaluator (the observational oracle),
//! * the full pipeline under all three certified collectors with a tiny
//!   region budget (forcing collections),
//!
//! and the results must agree — the paper's type-preservation theorem
//! made differential: however many collections happen, whatever the
//! collector rearranges, the answer cannot change.

use proptest::prelude::*;

use ps_ir::symbol::gensym;
use ps_ir::Symbol;
use ps_lambda::syntax::{BinOp, Expr, SrcProgram, SrcTy};
use scavenger::Collector;

/// A decision tape: the proptest input from which a program is derived
/// deterministically. Shrinking the tape shrinks the program.
struct Tape<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tape<'a> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }
}

fn gen_ty(tape: &mut Tape, depth: u32) -> SrcTy {
    if depth == 0 {
        return SrcTy::Int;
    }
    match tape.next() % 4 {
        0 | 1 => SrcTy::Int,
        2 => SrcTy::prod(gen_ty(tape, depth - 1), gen_ty(tape, depth - 1)),
        _ => SrcTy::arrow(gen_ty(tape, depth - 1), gen_ty(tape, depth - 1)),
    }
}

/// Builds an expression of the requested type under `env`.
fn gen_expr(tape: &mut Tape, env: &mut Vec<(Symbol, SrcTy)>, ty: &SrcTy, depth: u32) -> Expr {
    // Prefer a variable of the right type sometimes (and always at the
    // bottom if one exists).
    let candidates: Vec<Symbol> = env
        .iter()
        .filter(|(_, t)| t == ty)
        .map(|(x, _)| *x)
        .collect();
    if !candidates.is_empty() && (depth == 0 || tape.next().is_multiple_of(4)) {
        let i = tape.next() as usize % candidates.len();
        return Expr::Var(candidates[i]);
    }
    if depth == 0 {
        return base_case(tape, env, ty);
    }
    match tape.next() % 8 {
        // let x = e1 in e2
        0 => {
            let xt = gen_ty(tape, depth - 1);
            let rhs = gen_expr(tape, env, &xt, depth - 1);
            let x = gensym("gx");
            env.push((x, xt));
            let body = gen_expr(tape, env, ty, depth - 1);
            env.pop();
            Expr::let_(x, rhs, body)
        }
        // if0
        1 => {
            let c = gen_expr(tape, env, &SrcTy::Int, depth - 1);
            let t = gen_expr(tape, env, ty, depth - 1);
            let f = gen_expr(tape, env, ty, depth - 1);
            Expr::If0(c.into(), t.into(), f.into())
        }
        // application at the target type
        2 => {
            let at = gen_ty(tape, depth - 1);
            let f = gen_expr(tape, env, &SrcTy::arrow(at.clone(), ty.clone()), depth - 1);
            let a = gen_expr(tape, env, &at, depth - 1);
            Expr::app(f, a)
        }
        // projection from a pair containing the target type
        3 => {
            let other = gen_ty(tape, depth - 1);
            if tape.next().is_multiple_of(2) {
                let p = gen_expr(tape, env, &SrcTy::prod(ty.clone(), other), depth - 1);
                Expr::Proj(1, p.into())
            } else {
                let p = gen_expr(tape, env, &SrcTy::prod(other, ty.clone()), depth - 1);
                Expr::Proj(2, p.into())
            }
        }
        // structural cases by target type
        _ => base_case_deep(tape, env, ty, depth),
    }
}

fn base_case(tape: &mut Tape, env: &mut Vec<(Symbol, SrcTy)>, ty: &SrcTy) -> Expr {
    match ty {
        SrcTy::Int => Expr::Int((tape.next() as i64) - 128),
        SrcTy::Prod(a, b) => Expr::pair(base_case(tape, env, a), base_case(tape, env, b)),
        SrcTy::Arrow(a, b) => {
            let x = gensym("gl");
            env.push((x, (**a).clone()));
            let body = base_case(tape, env, b);
            env.pop();
            Expr::Lam {
                param: x,
                param_ty: (**a).clone(),
                body: body.into(),
            }
        }
    }
}

fn base_case_deep(tape: &mut Tape, env: &mut Vec<(Symbol, SrcTy)>, ty: &SrcTy, depth: u32) -> Expr {
    match ty {
        SrcTy::Int => {
            let a = gen_expr(tape, env, &SrcTy::Int, depth - 1);
            let b = gen_expr(tape, env, &SrcTy::Int, depth - 1);
            let op = match tape.next() % 3 {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                _ => BinOp::Mul,
            };
            Expr::Bin(op, a.into(), b.into())
        }
        SrcTy::Prod(a, b) => Expr::pair(
            gen_expr(tape, env, a, depth - 1),
            gen_expr(tape, env, b, depth - 1),
        ),
        SrcTy::Arrow(a, b) => {
            let x = gensym("gl");
            env.push((x, (**a).clone()));
            let body = gen_expr(tape, env, b, depth - 1);
            env.pop();
            Expr::Lam {
                param: x,
                param_ty: (**a).clone(),
                body: body.into(),
            }
        }
    }
}

fn gen_program(bytes: &[u8]) -> SrcProgram {
    let mut tape = Tape { bytes, pos: 0 };
    let mut env = Vec::new();
    let main = gen_expr(&mut tape, &mut env, &SrcTy::Int, 4);
    SrcProgram { defs: vec![], main }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated programs are well typed by construction.
    #[test]
    fn generated_programs_typecheck(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = gen_program(&bytes);
        prop_assert!(ps_lambda::typecheck::check_program(&p).is_ok(), "{p:?}");
    }

    /// Differential run: reference evaluator versus the full pipeline under
    /// every certified collector, with collections forced.
    #[test]
    fn collectors_preserve_results(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = gen_program(&bytes);
        let expected = ps_lambda::eval::run_program(&p, 1_000_000).expect("terminating");
        // Round-trip through the concrete syntax is not needed; compile the
        // AST directly via the pipeline internals.
        let cps = ps_clos::cps::cps_program(&p).expect("cps");
        let clos = ps_clos::cc::cc_program(&cps).expect("cc");
        for collector in [Collector::Basic, Collector::Forwarding, Collector::Generational] {
            let image = collector.image();
            let program = match collector {
                Collector::Basic => ps_trans::basic::translate(&clos, &image),
                Collector::Forwarding => ps_trans::forwarding::translate(&clos, &image),
                Collector::Generational => ps_trans::generational::translate(&clos, &image),
            }
            .expect("translate");
            let mut m = ps_gc_lang::machine::SubstMachine::load(
                &program,
                ps_gc_lang::memory::MemConfig {
                    region_budget: 48,
                    growth: ps_gc_lang::memory::GrowthPolicy::Adaptive,
                    track_types: false,
                    max_heap_words: None,
                    page_words: 512,
                },
            );
            match m.run(20_000_000).expect("no stuck states (progress)") {
                ps_gc_lang::machine::Outcome::Halted(n) => {
                    prop_assert_eq!(n, expected, "{} collector on {:?}", collector, p);
                }
                other => {
                    prop_assert!(false, "abnormal outcome {:?} on {:?}", other, p);
                }
            }
        }
    }

    /// The whole translated program typechecks (Definition 6.3), for every
    /// collector.
    #[test]
    fn translated_programs_typecheck(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let p = gen_program(&bytes);
        let cps = ps_clos::cps::cps_program(&p).expect("cps");
        let clos = ps_clos::cc::cc_program(&cps).expect("cc");
        for collector in [Collector::Basic, Collector::Forwarding, Collector::Generational] {
            let image = collector.image();
            let program = match collector {
                Collector::Basic => ps_trans::basic::translate(&clos, &image),
                Collector::Forwarding => ps_trans::forwarding::translate(&clos, &image),
                Collector::Generational => ps_trans::generational::translate(&clos, &image),
            }
            .expect("translate");
            if let Err(e) = ps_gc_lang::tyck::Checker::check_program(&program) {
                prop_assert!(false, "{collector}: {e}\nsource: {p:?}");
            }
        }
    }

    /// Per-step preservation (Props. 6.4/7.2/8.1) on small programs: every
    /// reachable machine state stays well formed, through collections.
    #[test]
    fn preservation_on_random_programs(bytes in proptest::collection::vec(any::<u8>(), 0..48)) {
        let p = gen_program(&bytes);
        for collector in [Collector::Basic, Collector::Forwarding, Collector::Generational] {
            let cps = ps_clos::cps::cps_program(&p).expect("cps");
            let clos = ps_clos::cc::cc_program(&cps).expect("cc");
            let image = collector.image();
            let program = match collector {
                Collector::Basic => ps_trans::basic::translate(&clos, &image),
                Collector::Forwarding => ps_trans::forwarding::translate(&clos, &image),
                Collector::Generational => ps_trans::generational::translate(&clos, &image),
            }
            .expect("translate");
            let mut m = ps_gc_lang::machine::SubstMachine::load(
                &program,
                ps_gc_lang::memory::MemConfig {
                    region_budget: 32,
                    growth: ps_gc_lang::memory::GrowthPolicy::Adaptive,
                    track_types: true,
                    max_heap_words: None,
                    page_words: 512,
                },
            );
            let mut steps = 0u64;
            loop {
                match m.step().expect("progress") {
                    ps_gc_lang::machine::StepOutcome::Halted(_) => break,
                    ps_gc_lang::machine::StepOutcome::Continue => {
                        // Checking every state is expensive; sample.
                        if steps.is_multiple_of(7) {
                            if let Err(e) = ps_gc_lang::wf::check_state(
                                &m,
                                ps_gc_lang::wf::WfOptions { check_code_bodies: false, reachable_only: true },
                            ) {
                                prop_assert!(false, "{collector} preservation at {steps}: {e}");
                            }
                        }
                        steps += 1;
                        prop_assert!(steps < 2_000_000, "runaway");
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pretty-printing round-trips: `parse(print(p))` evaluates to the same
    /// result (the printer is used to persist generated workloads).
    #[test]
    fn print_parse_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = gen_program(&bytes);
        let expected = ps_lambda::eval::run_program(&p, 1_000_000).expect("terminating");
        let printed = ps_lambda::print::program(&p);
        let back = ps_lambda::parse::parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        ps_lambda::typecheck::check_program(&back)
            .unwrap_or_else(|e| panic!("reparse ill-typed: {e}\n{printed}"));
        let got = ps_lambda::eval::run_program(&back, 1_000_000).expect("terminating");
        prop_assert_eq!(got, expected, "{}", printed);
    }
}
