//! Golden-file test for the bytecode disassembler: `psgc disasm` must
//! print a byte-stable instruction stream for two battery programs, in
//! both superinstruction modes.
//!
//! Symbol names in the listing come from a process-global gensym counter,
//! so stability is only guaranteed per process; the test therefore goes
//! through the `psgc` binary (one fresh process per listing), exactly as a
//! user would. To regenerate after an intentional instruction-set change:
//!
//! ```text
//! cargo run --bin psgc -- disasm <program.lam> [--no-superinstructions]
//! ```
//!
//! and redirect into `tests/golden/<name>.disasm`.

use std::path::PathBuf;
use std::process::Command;

const PROGRAMS: &[(&str, &str)] = &[
    (
        "factorial",
        "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 9",
    ),
    (
        "gc-stress",
        "fun churn (n : int) : int = if0 n then 0 else \
           (let p = ((n, n), (n, n)) in fst (fst p) - n + churn (n - 1))\n \
         churn 60",
    ),
];

fn disasm(src_path: &str, extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_psgc"))
        .arg("disasm")
        .arg(src_path)
        .args(extra)
        .output()
        .expect("psgc runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    String::from_utf8(out.stdout).expect("disassembly is UTF-8")
}

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.disasm"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn write_program(name: &str, src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psgc-disasm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(name);
    std::fs::write(&path, src).expect("write program");
    path
}

#[test]
fn disassembly_matches_the_golden_files() {
    for (name, src) in PROGRAMS {
        let prog = write_program(&format!("{name}.lam"), src);
        let prog = prog.to_str().unwrap();
        let listing = disasm(prog, &[]);
        assert_eq!(
            listing,
            golden(name),
            "{name}: disassembly drifted from tests/golden/{name}.disasm \
             (regenerate with `psgc disasm` if the change is intentional)"
        );
        // A second fresh process must reproduce the listing byte-for-byte.
        assert_eq!(listing, disasm(prog, &[]), "{name}: listing not stable");
    }

    // The superinstruction toggle is part of the stable format: the header
    // flips and the fused `lets`/`put-pair` forms unfuse.
    let (name, src) = PROGRAMS[0];
    let prog = write_program(&format!("{name}-nosuper.lam"), src);
    let plain = disasm(prog.to_str().unwrap(), &["--no-superinstructions"]);
    assert_eq!(
        plain,
        golden("factorial-nosuper"),
        "{name}: --no-superinstructions listing drifted"
    );
    assert!(plain.contains("superinstructions off"), "{plain}");
    assert!(!plain.contains("put-pair"), "{plain}");
}
