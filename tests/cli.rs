//! End-to-end tests of the `psgc` binary: generated help, the exit-code
//! contract, and the `--trace`/`--metrics` telemetry outputs for every
//! collector × backend combination.

use std::path::PathBuf;
use std::process::{Command, Output};

use scavenger::telemetry::validate_jsonl_trace;
use scavenger::{Backend, Collector};

const PROGRAM: &str = "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 10";

fn psgc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_psgc"))
        .args(args)
        .output()
        .expect("psgc runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psgc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn write_program(name: &str) -> PathBuf {
    let path = scratch(name);
    std::fs::write(&path, PROGRAM).expect("write program");
    path
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("psgc exited normally")
}

#[test]
fn help_is_generated_from_the_flag_and_command_tables() {
    let out = psgc(&["--help"]);
    assert_eq!(exit_code(&out), 0);
    let help = String::from_utf8(out.stdout).unwrap();
    for cmd in ["run", "check", "certify", "eval", "disasm"] {
        assert!(help.contains(cmd), "help must list command {cmd}: {help}");
    }
    for flag in [
        "--collector",
        "--backend",
        "--budget",
        "--growth",
        "--fuel",
        "--track-types",
        "--verify-every",
        "--audit",
        "--inject",
        "--max-heap-words",
        "--page-words",
        "--dump-bytecode",
        "--no-superinstructions",
        "--trace",
        "--metrics",
        "--sample",
        "--stats",
        "--stats-intern",
        "--stats-pages",
    ] {
        assert!(help.contains(flag), "help must list flag {flag}: {help}");
    }
    // The alternatives come from the library enums, not hand-written text.
    for c in Collector::ALL {
        assert!(help.contains(c.name()), "help must name collector {c}");
    }
    assert!(help.contains("subst|env|bytecode"));
    assert!(help.contains("fixed|adaptive"));
    assert!(help.contains("incremental|full"));
}

#[test]
fn exit_codes_distinguish_failure_classes() {
    let prog = write_program("exit_codes.lam");
    let prog = prog.to_str().unwrap();

    // 0: success.
    let ok = psgc(&["run", prog]);
    assert_eq!(exit_code(&ok), 0, "{ok:?}");
    assert_eq!(String::from_utf8_lossy(&ok.stdout).trim(), "3628800");

    // 2: usage errors — unknown command, unknown flag, bad flag value,
    // missing value, missing file.
    assert_eq!(exit_code(&psgc(&[])), 2);
    assert_eq!(exit_code(&psgc(&["frobnicate"])), 2);
    assert_eq!(exit_code(&psgc(&["run", prog, "--no-such-flag"])), 2);
    assert_eq!(
        exit_code(&psgc(&["run", prog, "--collector", "marksweep"])),
        2
    );
    assert_eq!(exit_code(&psgc(&["run", prog, "--budget", "many"])), 2);
    assert_eq!(exit_code(&psgc(&["run", prog, "--budget"])), 2);
    assert_eq!(exit_code(&psgc(&["run"])), 2);

    // 3: compile/typecheck failures.
    let bad = scratch("ill_formed.lam");
    std::fs::write(&bad, "fun (").unwrap();
    assert_eq!(exit_code(&psgc(&["run", bad.to_str().unwrap()])), 3);
    let ill = scratch("ill_typed.lam");
    std::fs::write(&ill, "(1, 2) + 3").unwrap();
    assert_eq!(exit_code(&psgc(&["run", ill.to_str().unwrap()])), 3);
    assert_eq!(exit_code(&psgc(&["eval", bad.to_str().unwrap()])), 3);

    // 1: runtime failures — fuel exhaustion, unreadable file, typed OOM.
    assert_eq!(exit_code(&psgc(&["run", prog, "--fuel", "10"])), 1);
    assert_eq!(exit_code(&psgc(&["run", "/nonexistent/psgc-test.lam"])), 1);
    let oom = psgc(&["run", prog, "--max-heap-words", "8"]);
    assert_eq!(exit_code(&oom), 1, "{oom:?}");
    assert!(
        String::from_utf8_lossy(&oom.stderr).contains("out of memory"),
        "{oom:?}"
    );

    // 2: malformed --inject specs are usage errors with context.
    assert_eq!(
        exit_code(&psgc(&["run", prog, "--inject", "rot-bits@5"])),
        2
    );
    assert_eq!(exit_code(&psgc(&["run", prog, "--inject", "flip-tag"])), 2);

    // 4: an injected fault caught by the per-step audit.
    let hit = psgc(&[
        "run",
        prog,
        "--track-types",
        "--verify-every",
        "1",
        "--inject",
        "flip-tag@20:1",
    ]);
    assert_eq!(exit_code(&hit), 4, "{hit:?}");
    assert!(
        String::from_utf8_lossy(&hit.stderr).contains("heap invariant violated"),
        "{hit:?}"
    );
}

#[test]
fn every_fault_spec_round_trips_through_the_cli_to_exit_code_4() {
    let prog = write_program("inject_matrix.lam");
    let prog = prog.to_str().unwrap();
    for kind in ps_gc_lang::faults::FaultKind::ALL {
        let plan = ps_gc_lang::faults::FaultPlan {
            kind,
            step: 20,
            seed: 3,
        };
        let out = psgc(&[
            "run",
            prog,
            "--budget",
            "64",
            "--track-types",
            "--verify-every",
            "1",
            "--inject",
            &plan.to_spec(),
        ]);
        assert_eq!(exit_code(&out), 4, "{kind}: {out:?}");
    }
}

#[test]
fn trace_is_written_when_the_audit_catches_an_injected_fault() {
    let prog = write_program("violation_trace.lam");
    let trace_path = scratch("violation_trace.jsonl");
    let out = psgc(&[
        "run",
        prog.to_str().unwrap(),
        "--track-types",
        "--verify-every",
        "1",
        "--inject",
        "truncate-tuple@20:1",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 4, "{out:?}");
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let summary = validate_jsonl_trace(&trace).expect("trace validates");
    assert_eq!(summary.count("invariant_violation"), 1);
    assert_eq!(summary.count("halt"), 0);
}

#[test]
fn trace_is_written_when_the_heap_cap_is_hit() {
    let prog = write_program("oom_trace.lam");
    let trace_path = scratch("oom_trace.jsonl");
    let out = psgc(&[
        "run",
        prog.to_str().unwrap(),
        "--max-heap-words",
        "8",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let summary = validate_jsonl_trace(&trace).expect("trace validates");
    assert_eq!(summary.count("oom"), 1);
    assert_eq!(summary.count("halt"), 0);
}

#[test]
fn trace_and_metrics_for_every_collector_backend_combination() {
    let prog = write_program("trace_matrix.lam");
    let prog = prog.to_str().unwrap();
    for collector in Collector::ALL {
        for backend in Backend::ALL {
            let trace_path = scratch(&format!("trace-{collector}-{backend}.jsonl"));
            let out = psgc(&[
                "run",
                prog,
                "--collector",
                &collector.to_string(),
                "--backend",
                &backend.to_string(),
                "--budget",
                "96",
                "--trace",
                trace_path.to_str().unwrap(),
                "--metrics",
                "--sample",
                "100",
            ]);
            assert_eq!(exit_code(&out), 0, "{collector}/{backend}: {out:?}");
            assert_eq!(
                String::from_utf8_lossy(&out.stdout).trim(),
                "3628800",
                "{collector}/{backend}"
            );
            // --metrics prints the aggregate block to stderr.
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(err.contains("collections:"), "{collector}/{backend}: {err}");
            assert!(err.contains("copy sizes"), "{collector}/{backend}: {err}");

            // The trace file validates against the schema and shows a
            // complete, collector-consistent event stream.
            let trace = std::fs::read_to_string(&trace_path).expect("trace written");
            let summary = validate_jsonl_trace(&trace)
                .unwrap_or_else(|e| panic!("{collector}/{backend}: {e}"));
            assert_eq!(summary.count("meta"), 1, "{collector}/{backend}");
            assert_eq!(summary.count("summary"), 1, "{collector}/{backend}");
            assert_eq!(summary.count("halt"), 1, "{collector}/{backend}");
            assert!(summary.count("gc_begin") > 0, "{collector}/{backend}");
            assert_eq!(
                summary.count("gc_begin"),
                summary.count("gc_end"),
                "{collector}/{backend}: collections must balance"
            );
            assert!(summary.count("copy") > 0, "{collector}/{backend}");
            assert!(summary.count("step") > 0, "{collector}/{backend}");
            let meta_line = trace.lines().next().unwrap();
            assert!(
                meta_line.contains(&format!("\"collector\":\"{collector}\""))
                    && meta_line.contains(&format!("\"backend\":\"{backend}\"")),
                "{collector}/{backend}: {meta_line}"
            );
            // `promoted` marks copies into regions that predate the
            // collection. Basic copies only into its fresh to-space;
            // forwarding first puts the root package into the (full)
            // from-region before widening — exactly one such copy per
            // collection; generational promotes many survivors into the
            // old region.
            let promoted = trace
                .lines()
                .filter(|l| l.contains("\"promoted\":true"))
                .count();
            match collector {
                Collector::Basic => assert_eq!(promoted, 0, "basic has no old regions"),
                Collector::Forwarding => assert_eq!(
                    promoted,
                    summary.count("gc_begin"),
                    "forwarding puts one root into the from-region per collection"
                ),
                Collector::Generational => {
                    assert!(promoted > 0, "generational minor GCs must promote");
                }
            }
        }
    }
}

#[test]
fn trace_is_written_even_when_the_run_exhausts_fuel() {
    let prog = write_program("fuel_trace.lam");
    let trace_path = scratch("fuel_trace.jsonl");
    let out = psgc(&[
        "run",
        prog.to_str().unwrap(),
        "--fuel",
        "50",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1);
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let summary = validate_jsonl_trace(&trace).expect("trace validates");
    assert_eq!(summary.count("fuel_exhausted"), 1);
    assert_eq!(summary.count("halt"), 0);
}

#[test]
fn stats_intern_reports_interner_occupancy() {
    let prog = write_program("stats_intern.lam");
    let out = psgc(&["run", prog.to_str().unwrap(), "--stats-intern"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("intern:"),
        "missing report header: {stderr}"
    );
    for row in [
        "tag nodes",
        "ty nodes",
        "term nodes",
        "val nodes",
        "tag norm memo",
        "ty norm memo",
        "tag canon memo",
        "ty canon memo",
        "tag fv memo",
        "ty fv memo",
        "term fv memo",
        "val fv memo",
        "term skips",
        "val skips",
    ] {
        assert!(stderr.contains(row), "missing row {row:?}: {stderr}");
    }
    // Compiling and certifying any program interns nodes and records hits.
    for prefix in ["tag nodes", "term nodes"] {
        let row = stderr.lines().find(|l| l.starts_with(prefix)).unwrap();
        let nodes: u64 = row
            .split_whitespace()
            .nth(2)
            .and_then(|w| w.parse().ok())
            .expect("node count parses");
        assert!(nodes > 0, "interner must be populated: {row}");
        assert!(row.contains("(hits "), "hit counter missing: {row}");
    }
}

#[test]
fn stats_pages_reports_the_page_store() {
    let prog = write_program("stats_pages.lam");
    let out = psgc(&["run", prog.to_str().unwrap(), "--stats-pages"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    for row in [
        "page words:",
        "pages:",
        "reserved words:",
        "live data words:",
    ] {
        assert!(stderr.contains(row), "missing row {row:?}: {stderr}");
    }
    let pages_row = stderr.lines().find(|l| l.starts_with("pages:")).unwrap();
    let allocated: u64 = pages_row
        .split_whitespace()
        .nth(1)
        .and_then(|w| w.parse().ok())
        .expect("allocated count parses");
    assert!(allocated > 0, "a run must allocate pages: {pages_row}");
}

#[test]
fn audit_mode_never_changes_observable_output() {
    // The incremental (default) and full audit strategies must agree on
    // everything the user can see: result, stats, metrics, and the whole
    // telemetry stream — on clean runs and on runs that catch a fault.
    let prog = write_program("audit_modes.lam");
    let prog = prog.to_str().unwrap();
    let run = |audit: &str, inject: Option<&str>, trace: &PathBuf| {
        let mut args = vec![
            "run",
            prog,
            "--track-types",
            "--verify-every",
            "1",
            "--audit",
            audit,
            "--stats",
            "--stats-pages",
            "--metrics",
            "--trace",
        ];
        let t = trace.to_str().unwrap();
        args.push(t);
        if let Some(spec) = inject {
            args.push("--inject");
            args.push(spec);
        }
        psgc(&args)
    };
    // Clean run: everything must be byte-identical.
    let trace_inc = scratch("audit_inc.jsonl");
    let trace_full = scratch("audit_full.jsonl");
    let inc = run("incremental", None, &trace_inc);
    let full = run("full", None, &trace_full);
    assert_eq!(exit_code(&inc), 0, "{inc:?}");
    assert_eq!(exit_code(&full), 0, "{full:?}");
    assert_eq!(inc.stdout, full.stdout, "results must agree");
    assert_eq!(
        inc.stderr, full.stderr,
        "stats/metrics/diagnostics must be byte-identical"
    );
    let a = std::fs::read(&trace_inc).expect("incremental trace");
    let b = std::fs::read(&trace_full).expect("full trace");
    assert_eq!(a, b, "traces must be byte-identical");

    // Fault runs: both modes must catch the fault at the same step (the
    // detail wording may differ — page-level vs region-level diagnosis).
    let violation_step = |trace: &PathBuf| {
        let text = std::fs::read_to_string(trace).expect("trace readable");
        let line = text
            .lines()
            .find(|l| l.contains("\"event\":\"invariant_violation\""))
            .expect("violation recorded")
            .to_string();
        let step = line
            .split("\"step\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .expect("step field");
        step.parse::<u64>().expect("step parses")
    };
    for inject in ["truncate-tuple@20:1", "stale-page-header@20:1"] {
        let trace_inc = scratch("audit_inc_fault.jsonl");
        let trace_full = scratch("audit_full_fault.jsonl");
        let inc = run("incremental", Some(inject), &trace_inc);
        let full = run("full", Some(inject), &trace_full);
        assert_eq!(exit_code(&inc), 4, "{inject}: {inc:?}");
        assert_eq!(exit_code(&full), 4, "{inject}: {full:?}");
        assert_eq!(
            violation_step(&trace_inc),
            violation_step(&trace_full),
            "{inject}: both audit modes must catch the fault at the same step"
        );
    }
}

#[test]
fn certification_thread_count_never_changes_observable_output() {
    let prog = write_program("cert_threads.lam");
    let run = |threads: &str, trace: &PathBuf| {
        Command::new(env!("CARGO_BIN_EXE_psgc"))
            .args([
                "run",
                prog.to_str().unwrap(),
                "--stats",
                "--metrics",
                "--trace",
                trace.to_str().unwrap(),
            ])
            .env("PS_CERT_THREADS", threads)
            .output()
            .expect("psgc runs")
    };
    let trace_serial = scratch("cert_threads_serial.jsonl");
    let serial = run("1", &trace_serial);
    assert_eq!(exit_code(&serial), 0);
    for threads in ["2", "4"] {
        let trace_par = scratch("cert_threads_par.jsonl");
        let par = run(threads, &trace_par);
        assert_eq!(exit_code(&par), 0);
        assert_eq!(
            serial.stdout, par.stdout,
            "stats/metrics must be byte-identical at PS_CERT_THREADS={threads}"
        );
        assert_eq!(
            serial.stderr, par.stderr,
            "diagnostics must be byte-identical at PS_CERT_THREADS={threads}"
        );
        let a = std::fs::read(&trace_serial).expect("serial trace");
        let b = std::fs::read(&trace_par).expect("parallel trace");
        assert_eq!(
            a, b,
            "telemetry event stream must be byte-identical at PS_CERT_THREADS={threads}"
        );
    }
}
