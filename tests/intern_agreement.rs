//! Differential tests for the interned tag/type/term/value layer: the
//! memoized, id-keyed normalizers and equality checks in `tags`/`moper`,
//! and the fingerprint-skipping substitution in `subst`, must agree with
//! the pre-refactor recursive implementations kept verbatim in
//! `gc_lang::reference`.
//!
//! Inputs come from byte-tape generators (the `crates/proptest` shim): a
//! tape is decoded into a well-kinded tag or a type, and decoding the same
//! tape twice with different *binder-name prefixes* yields a guaranteed
//! α-equivalent pair that differs only in bound names (and, for region
//! sets, in element order) — exercising the canonicalization paths with
//! known-positive cases, while tags/types from disjoint tapes exercise the
//! negative side.

use proptest::prelude::*;

use scavenger::gc_lang::machine::{Outcome, Program, SubstMachine};
use scavenger::gc_lang::memory::{GrowthPolicy, MemConfig};
use scavenger::gc_lang::moper;
use scavenger::gc_lang::reference::{self, RefSubst};
use scavenger::gc_lang::subst::Subst;
use scavenger::gc_lang::syntax::{
    Dialect, Kind, Op, PrimOp, Region, RegionName, Tag, Term, Ty, Value,
};
use scavenger::gc_lang::tags::{self, Equiv};
use scavenger::ir::Symbol;

const DIALECTS: [Dialect; 3] = [Dialect::Basic, Dialect::Forwarding, Dialect::Generational];

/// A cursor over the random byte tape. Exhausted tapes yield zeros, so
/// every tape decodes to *something* (usually small).
struct Tape<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tape<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Tape { bytes, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }
}

/// Deterministic binder names: decoding one tape with prefixes `"x"` and
/// `"y"` produces two trees identical up to bound-name renaming.
struct Names {
    prefix: &'static str,
    counter: u32,
}

impl Names {
    fn fresh(&mut self, class: &str) -> Symbol {
        self.counter += 1;
        Symbol::intern(&format!("{}{}!{}", self.prefix, class, self.counter))
    }
}

fn free_tag_var(b: u8) -> Symbol {
    Symbol::intern(["ft!a", "ft!b"][b as usize % 2])
}

fn free_alpha_var(b: u8) -> Symbol {
    Symbol::intern(["fa!a", "fa!b"][b as usize % 2])
}

/// A region: `cd`, a concrete name, a free region variable, or a bound one.
fn gen_region(tape: &mut Tape, renv: &[Symbol]) -> Region {
    match tape.next() % 4 {
        0 => Region::cd(),
        1 => Region::Name(RegionName(1 + tape.next() as u32 % 3)),
        2 if !renv.is_empty() => {
            let i = tape.next() as usize % renv.len();
            Region::Var(renv[i])
        }
        _ => Region::Var(Symbol::intern(["fr!a", "fr!b"][tape.next() as usize % 2])),
    }
}

/// A well-kinded tag of kind Ω (β-redexes included), mirroring the
/// generator in `crates/gc-lang/tests/tag_props.rs` but with deterministic
/// binder names so α-variant pairs can be produced from one tape.
fn gen_tag(tape: &mut Tape, env: &mut Vec<Symbol>, names: &mut Names, depth: u32) -> Tag {
    if depth == 0 {
        return if env.is_empty() || tape.next().is_multiple_of(2) {
            Tag::Int
        } else {
            let i = tape.next() as usize % env.len();
            Tag::Var(env[i])
        };
    }
    match tape.next() % 8 {
        0 => Tag::Int,
        1 => Tag::Var(free_tag_var(tape.next())),
        2 => {
            if env.is_empty() {
                Tag::Int
            } else {
                let i = tape.next() as usize % env.len();
                Tag::Var(env[i])
            }
        }
        3 => Tag::prod(
            gen_tag(tape, env, names, depth - 1),
            gen_tag(tape, env, names, depth - 1),
        ),
        4 => {
            let n = 1 + tape.next() as usize % 2;
            let args: Vec<Tag> = (0..n)
                .map(|_| gen_tag(tape, env, names, depth - 1))
                .collect();
            Tag::arrow(args)
        }
        5 => {
            let t = names.fresh("t");
            env.push(t);
            let body = gen_tag(tape, env, names, depth - 1);
            env.pop();
            Tag::exist(t, body)
        }
        // A β-redex: (λt.body) arg.
        _ => {
            let t = names.fresh("t");
            env.push(t);
            let body = gen_tag(tape, env, names, depth - 1);
            env.pop();
            let arg = gen_tag(tape, env, names, depth - 1);
            Tag::app(Tag::lam(t, body), arg)
        }
    }
}

/// A type covering every `Ty` constructor: the hard-wired operators over
/// generated tags, all three existentials (with their binders *used* in the
/// body), sums, and `Code`. `mirror` reverses generated region sets — the
/// sets must compare as sets, so a reversed set stays α-equal.
fn gen_ty(
    tape: &mut Tape,
    tenv: &mut Vec<Symbol>,
    renv: &mut Vec<Symbol>,
    aenv: &mut Vec<Symbol>,
    names: &mut Names,
    mirror: bool,
    depth: u32,
) -> Ty {
    let tag = |tape: &mut Tape, names: &mut Names, d: u32| {
        let mut env = tenv.clone();
        gen_tag(tape, &mut env, names, d)
    };
    if depth == 0 {
        return match tape.next() % 3 {
            0 => Ty::Int,
            1 if !aenv.is_empty() => {
                let i = tape.next() as usize % aenv.len();
                Ty::Alpha(aenv[i])
            }
            1 => Ty::Alpha(free_alpha_var(tape.next())),
            _ => Ty::m(gen_region(tape, renv), tag(tape, names, 1)),
        };
    }
    match tape.next() % 13 {
        0 => Ty::Int,
        1 => {
            if !aenv.is_empty() && tape.next().is_multiple_of(2) {
                let i = tape.next() as usize % aenv.len();
                Ty::Alpha(aenv[i])
            } else {
                Ty::Alpha(free_alpha_var(tape.next()))
            }
        }
        2 => Ty::m(gen_region(tape, renv), tag(tape, names, depth)),
        3 => Ty::c(
            gen_region(tape, renv),
            gen_region(tape, renv),
            tag(tape, names, depth),
        ),
        4 => Ty::mgen(
            gen_region(tape, renv),
            gen_region(tape, renv),
            tag(tape, names, depth),
        ),
        5 => Ty::prod(
            gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1),
            gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1),
        ),
        6 => Ty::sum(
            gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1),
            gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1),
        ),
        7 => {
            let inner = gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1);
            if tape.next().is_multiple_of(2) {
                Ty::Left(inner.id())
            } else {
                Ty::Right(inner.id())
            }
        }
        8 => gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1).at(gen_region(tape, renv)),
        9 => {
            let t = names.fresh("bt");
            tenv.push(t);
            let body = gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1);
            tenv.pop();
            // Pair the binder with a use, so renaming it is observable.
            let used = Ty::prod(Ty::m(gen_region(tape, renv), Tag::Var(t)), body);
            Ty::exist_tag(t, Kind::Omega, used)
        }
        10 => {
            let a = names.fresh("ba");
            let mut set = vec![gen_region(tape, renv), gen_region(tape, renv)];
            if mirror {
                set.reverse();
            }
            aenv.push(a);
            let body = gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1);
            aenv.pop();
            Ty::exist_alpha(a, set, Ty::prod(Ty::Alpha(a), body))
        }
        11 => {
            let r = names.fresh("br");
            let mut bound = vec![gen_region(tape, renv), gen_region(tape, renv)];
            if mirror {
                bound.reverse();
            }
            renv.push(r);
            let body = gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1);
            renv.pop();
            Ty::exist_rgn(r, bound, body)
        }
        _ => {
            let t = names.fresh("ct");
            let r = names.fresh("cr");
            tenv.push(t);
            renv.push(r);
            let n = 1 + tape.next() as usize % 2;
            let args: Vec<Ty> = (0..n)
                .map(|_| gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1))
                .collect();
            renv.pop();
            tenv.pop();
            Ty::code([(t, Kind::Omega)], [r], args)
        }
    }
}

fn tag_from(bytes: &[u8], prefix: &'static str) -> Tag {
    let mut tape = Tape::new(bytes);
    let mut names = Names { prefix, counter: 0 };
    gen_tag(&mut tape, &mut Vec::new(), &mut names, 4)
}

fn ty_from(bytes: &[u8], prefix: &'static str, mirror: bool) -> Ty {
    let mut tape = Tape::new(bytes);
    let mut names = Names { prefix, counter: 0 };
    gen_ty(
        &mut tape,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
        &mut names,
        mirror,
        4,
    )
}

fn free_val_var(b: u8) -> Symbol {
    Symbol::intern(["fx!a", "fx!b"][b as usize % 2])
}

/// Binder environments for all four namespaces, threaded through the
/// term/value generators.
#[derive(Default)]
struct Envs {
    tenv: Vec<Symbol>,
    renv: Vec<Symbol>,
    aenv: Vec<Symbol>,
    xenv: Vec<Symbol>,
}

/// A value covering every constructor programs build (packages included;
/// code literals are load-time-only, so they are not generated).
fn gen_value(tape: &mut Tape, e: &mut Envs, names: &mut Names, depth: u32) -> Value {
    if depth == 0 {
        return match tape.next() % 3 {
            0 => Value::Int(i64::from(tape.next())),
            1 if !e.xenv.is_empty() => {
                let i = tape.next() as usize % e.xenv.len();
                Value::Var(e.xenv[i])
            }
            _ => Value::Var(free_val_var(tape.next())),
        };
    }
    match tape.next() % 10 {
        0 => Value::Int(i64::from(tape.next())),
        1 => {
            if !e.xenv.is_empty() && tape.next().is_multiple_of(2) {
                let i = tape.next() as usize % e.xenv.len();
                Value::Var(e.xenv[i])
            } else {
                Value::Var(free_val_var(tape.next()))
            }
        }
        2 => Value::Addr(
            RegionName(1 + tape.next() as u32 % 3),
            tape.next() as u32 % 4,
        ),
        3 => Value::pair(
            gen_value(tape, e, names, depth - 1),
            gen_value(tape, e, names, depth - 1),
        ),
        4 => {
            let t = names.fresh("vt");
            let tag = gen_tag(tape, &mut e.tenv, names, depth - 1);
            let val = gen_value(tape, e, names, depth - 1).id();
            e.tenv.push(t);
            let body_ty = gen_ty(
                tape,
                &mut e.tenv,
                &mut e.renv,
                &mut e.aenv,
                names,
                false,
                depth - 1,
            );
            e.tenv.pop();
            Value::PackTag {
                tvar: t,
                kind: Kind::Omega,
                tag,
                val,
                body_ty,
            }
        }
        5 => {
            let a = names.fresh("va");
            let regions = [gen_region(tape, &e.renv), gen_region(tape, &e.renv)];
            let witness = gen_ty(
                tape,
                &mut e.tenv,
                &mut e.renv,
                &mut e.aenv,
                names,
                false,
                depth - 1,
            );
            let val = gen_value(tape, e, names, depth - 1).id();
            e.aenv.push(a);
            let body_ty = gen_ty(
                tape,
                &mut e.tenv,
                &mut e.renv,
                &mut e.aenv,
                names,
                false,
                depth - 1,
            );
            e.aenv.pop();
            Value::PackAlpha {
                avar: a,
                regions: regions.into(),
                witness,
                val,
                body_ty,
            }
        }
        6 => {
            let r = names.fresh("vr");
            let bound = [gen_region(tape, &e.renv), gen_region(tape, &e.renv)];
            let witness = gen_region(tape, &e.renv);
            let val = gen_value(tape, e, names, depth - 1).id();
            e.renv.push(r);
            let body_ty = gen_ty(
                tape,
                &mut e.tenv,
                &mut e.renv,
                &mut e.aenv,
                names,
                false,
                depth - 1,
            );
            e.renv.pop();
            Value::PackRgn {
                rvar: r,
                bound: bound.into(),
                witness,
                val,
                body_ty,
            }
        }
        7 => Value::TagApp(
            gen_value(tape, e, names, depth - 1).id(),
            [gen_tag(tape, &mut e.tenv, names, depth - 1)].into(),
            [gen_region(tape, &e.renv)].into(),
        ),
        8 => Value::Inl(gen_value(tape, e, names, depth - 1).id()),
        _ => Value::Inr(gen_value(tape, e, names, depth - 1).id()),
    }
}

fn gen_op(tape: &mut Tape, e: &mut Envs, names: &mut Names, depth: u32) -> Op {
    match tape.next() % 6 {
        0 => Op::Val(gen_value(tape, e, names, depth)),
        1 => Op::Proj(1 + tape.next() % 2, gen_value(tape, e, names, depth)),
        2 => Op::Put(gen_region(tape, &e.renv), gen_value(tape, e, names, depth)),
        3 => Op::Get(gen_value(tape, e, names, depth)),
        4 => Op::Strip(gen_value(tape, e, names, depth)),
        _ => Op::Prim(
            PrimOp::Add,
            gen_value(tape, e, names, depth),
            gen_value(tape, e, names, depth),
        ),
    }
}

/// A term covering every `Term` constructor, with binders in all four
/// namespaces drawn from deterministic prefixed names (so one tape yields
/// α-variant pairs, like [`gen_tag`]/[`gen_ty`]).
fn gen_term(tape: &mut Tape, e: &mut Envs, names: &mut Names, depth: u32) -> Term {
    if depth == 0 {
        return Term::Halt(gen_value(tape, e, names, 1));
    }
    let vd = depth - 1;
    match tape.next() % 15 {
        0 => Term::App {
            f: gen_value(tape, e, names, vd),
            tags: vec![gen_tag(tape, &mut e.tenv, names, vd)],
            regions: vec![gen_region(tape, &e.renv)],
            args: vec![gen_value(tape, e, names, vd)],
        },
        1 => {
            let x = names.fresh("v");
            let op = gen_op(tape, e, names, vd);
            e.xenv.push(x);
            let body = gen_term(tape, e, names, depth - 1);
            e.xenv.pop();
            Term::let_(x, op, body)
        }
        2 => Term::Halt(gen_value(tape, e, names, vd)),
        3 => Term::IfGc {
            rho: gen_region(tape, &e.renv),
            full: gen_term(tape, e, names, depth - 1).id(),
            cont: gen_term(tape, e, names, depth - 1).id(),
        },
        4 => {
            let pkg = gen_value(tape, e, names, vd);
            let t = names.fresh("ot");
            let x = names.fresh("ox");
            e.tenv.push(t);
            e.xenv.push(x);
            let body = gen_term(tape, e, names, depth - 1).id();
            e.xenv.pop();
            e.tenv.pop();
            Term::OpenTag {
                pkg,
                tvar: t,
                x,
                body,
            }
        }
        5 => {
            let pkg = gen_value(tape, e, names, vd);
            let a = names.fresh("oa");
            let x = names.fresh("ox");
            e.aenv.push(a);
            e.xenv.push(x);
            let body = gen_term(tape, e, names, depth - 1).id();
            e.xenv.pop();
            e.aenv.pop();
            Term::OpenAlpha {
                pkg,
                avar: a,
                x,
                body,
            }
        }
        6 => {
            let pkg = gen_value(tape, e, names, vd);
            let r = names.fresh("or");
            let x = names.fresh("ox");
            e.renv.push(r);
            e.xenv.push(x);
            let body = gen_term(tape, e, names, depth - 1).id();
            e.xenv.pop();
            e.renv.pop();
            Term::OpenRgn {
                pkg,
                rvar: r,
                x,
                body,
            }
        }
        7 => {
            let r = names.fresh("lr");
            e.renv.push(r);
            let body = gen_term(tape, e, names, depth - 1).id();
            e.renv.pop();
            Term::LetRegion { rvar: r, body }
        }
        8 => Term::Only {
            regions: vec![gen_region(tape, &e.renv), gen_region(tape, &e.renv)],
            body: gen_term(tape, e, names, depth - 1).id(),
        },
        9 => {
            let tag = gen_tag(tape, &mut e.tenv, names, vd);
            let int_arm = gen_term(tape, e, names, depth - 1).id();
            let arrow_arm = gen_term(tape, e, names, depth - 1).id();
            let (t1, t2) = (names.fresh("tp"), names.fresh("tp"));
            e.tenv.push(t1);
            e.tenv.push(t2);
            let pe = gen_term(tape, e, names, depth - 1).id();
            e.tenv.pop();
            e.tenv.pop();
            let te = names.fresh("te");
            e.tenv.push(te);
            let ee = gen_term(tape, e, names, depth - 1).id();
            e.tenv.pop();
            Term::Typecase {
                tag,
                int_arm,
                arrow_arm,
                prod_arm: (t1, t2, pe),
                exist_arm: (te, ee),
            }
        }
        10 => {
            let scrut = gen_value(tape, e, names, vd);
            let x = names.fresh("il");
            e.xenv.push(x);
            let left = gen_term(tape, e, names, depth - 1).id();
            let right = gen_term(tape, e, names, depth - 1).id();
            e.xenv.pop();
            Term::IfLeft {
                x,
                scrut,
                left,
                right,
            }
        }
        11 => Term::Set {
            dst: gen_value(tape, e, names, vd),
            src: gen_value(tape, e, names, vd),
            body: gen_term(tape, e, names, depth - 1).id(),
        },
        12 => {
            let from = gen_region(tape, &e.renv);
            let to = gen_region(tape, &e.renv);
            let tag = gen_tag(tape, &mut e.tenv, names, vd);
            let v = gen_value(tape, e, names, vd);
            let x = names.fresh("w");
            e.xenv.push(x);
            let body = gen_term(tape, e, names, depth - 1).id();
            e.xenv.pop();
            Term::Widen {
                x,
                from,
                to,
                tag,
                v,
                body,
            }
        }
        13 => Term::IfReg {
            r1: gen_region(tape, &e.renv),
            r2: gen_region(tape, &e.renv),
            eq: gen_term(tape, e, names, depth - 1).id(),
            ne: gen_term(tape, e, names, depth - 1).id(),
        },
        _ => Term::If0 {
            scrut: gen_value(tape, e, names, vd),
            zero: gen_term(tape, e, names, depth - 1).id(),
            nonzero: gen_term(tape, e, names, depth - 1).id(),
        },
    }
}

fn term_from(bytes: &[u8], prefix: &'static str) -> Term {
    let mut tape = Tape::new(bytes);
    let mut names = Names { prefix, counter: 0 };
    gen_term(&mut tape, &mut Envs::default(), &mut names, 4)
}

fn value_from(bytes: &[u8], prefix: &'static str) -> Value {
    let mut tape = Tape::new(bytes);
    let mut names = Names { prefix, counter: 0 };
    gen_value(&mut tape, &mut Envs::default(), &mut names, 4)
}

/// Builds the *same* simultaneous substitution through both paths: the
/// fingerprint-skipping [`Subst`] and the pre-interning [`RefSubst`]. The
/// domain targets the free-variable pools the generators draw from, so
/// hits actually occur; at least one binding is always present.
fn subs_from(bytes: &[u8]) -> (Subst, RefSubst) {
    let mut tape = Tape::new(bytes);
    let mut names = Names {
        prefix: "s",
        counter: 0,
    };
    let mut e = Envs::default();
    let mut fast = Subst::new();
    let mut slow = RefSubst::new();
    if tape.next().is_multiple_of(2) {
        let tau = gen_tag(&mut tape, &mut e.tenv, &mut names, 2);
        let t = free_tag_var(tape.next());
        fast = fast.with_tag(t, tau.clone());
        slow = slow.with_tag(t, tau);
    }
    if tape.next().is_multiple_of(2) {
        let rho = gen_region(&mut tape, &[]);
        let r = Symbol::intern(["fr!a", "fr!b"][tape.next() as usize % 2]);
        fast = fast.with_rgn(r, rho);
        slow = slow.with_rgn(r, rho);
    }
    if tape.next().is_multiple_of(2) {
        let sigma = gen_ty(
            &mut tape,
            &mut e.tenv,
            &mut e.renv,
            &mut e.aenv,
            &mut names,
            false,
            2,
        );
        let a = free_alpha_var(tape.next());
        fast = fast.with_alpha(a, sigma.clone());
        slow = slow.with_alpha(a, sigma);
    }
    let v = gen_value(&mut tape, &mut e, &mut names, 2);
    let x = free_val_var(tape.next());
    fast = fast.with_val(x, v.clone());
    slow = slow.with_val(x, v);
    (fast, slow)
}

// ----- runnable α-variant programs ---------------------------------------

/// Variables live during runnable-program generation, by runtime shape.
#[derive(Default)]
struct RunScope {
    /// Bound to integers.
    ints: Vec<Symbol>,
    /// Bound to `put` addresses of integer pairs.
    addrs: Vec<Symbol>,
    /// Live region binders.
    rgns: Vec<Symbol>,
}

fn int_of(tape: &mut Tape, scope: &RunScope) -> Value {
    if scope.ints.is_empty() || tape.next().is_multiple_of(2) {
        Value::Int(i64::from(tape.next() % 16))
    } else {
        let i = tape.next() as usize % scope.ints.len();
        Value::Var(scope.ints[i])
    }
}

/// A closed, terminating λGC term: `let` chains of arithmetic, region
/// allocation, `put`/`get`/`proj` round-trips, and `if0` splits, ending in
/// `halt`. Fuel strictly decreases, so every tape terminates.
fn gen_run_term(tape: &mut Tape, names: &mut Names, fuel: u32, scope: &mut RunScope) -> Term {
    if fuel == 0 {
        return Term::Halt(int_of(tape, scope));
    }
    match tape.next() % 6 {
        0 => {
            let x = names.fresh("i");
            let op = Op::Prim(PrimOp::Add, int_of(tape, scope), int_of(tape, scope));
            scope.ints.push(x);
            let body = gen_run_term(tape, names, fuel - 1, scope);
            scope.ints.pop();
            Term::let_(x, op, body)
        }
        1 => {
            let r = names.fresh("r");
            scope.rgns.push(r);
            let body = gen_run_term(tape, names, fuel - 1, scope);
            scope.rgns.pop();
            Term::LetRegion {
                rvar: r,
                body: body.id(),
            }
        }
        2 if !scope.rgns.is_empty() => {
            let i = tape.next() as usize % scope.rgns.len();
            let a = names.fresh("a");
            let op = Op::Put(
                Region::Var(scope.rgns[i]),
                Value::pair(int_of(tape, scope), int_of(tape, scope)),
            );
            scope.addrs.push(a);
            let body = gen_run_term(tape, names, fuel - 1, scope);
            scope.addrs.pop();
            Term::let_(a, op, body)
        }
        3 if !scope.addrs.is_empty() => {
            let i = tape.next() as usize % scope.addrs.len();
            let p = names.fresh("p");
            let x = names.fresh("i");
            let proj = 1 + tape.next() % 2;
            scope.ints.push(x);
            let body = gen_run_term(tape, names, fuel - 1, scope);
            scope.ints.pop();
            Term::let_(
                p,
                Op::Get(Value::Var(scope.addrs[i])),
                Term::let_(x, Op::Proj(proj, Value::Var(p)), body),
            )
        }
        4 => Term::If0 {
            scrut: int_of(tape, scope),
            zero: gen_run_term(tape, names, fuel / 2, scope).id(),
            nonzero: gen_run_term(tape, names, fuel / 2, scope).id(),
        },
        _ => {
            let x = names.fresh("i");
            let op = Op::Val(int_of(tape, scope));
            scope.ints.push(x);
            let body = gen_run_term(tape, names, fuel - 1, scope);
            scope.ints.pop();
            Term::let_(x, op, body)
        }
    }
}

fn runnable_from(bytes: &[u8], prefix: &'static str) -> Program {
    let mut tape = Tape::new(bytes);
    let mut names = Names { prefix, counter: 0 };
    let fuel = 3 + u32::from(tape.next() % 8);
    Program {
        dialect: Dialect::Basic,
        code: vec![],
        main: gen_run_term(&mut tape, &mut names, fuel, &mut RunScope::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The memoized normalizer and the reference normalizer agree on the
    /// normal form (up to α — capture-avoiding renames draw different
    /// fresh names) and on the *exact* β-step count, which is what feeds
    /// the machine's `Stats`.
    #[test]
    fn tag_normalization_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let tau = tag_from(&bytes, "x");
        let mut mem_steps = 0u64;
        let mem = tags::normalize_counted(&tau, &mut mem_steps);
        let mut ref_steps = 0u64;
        let reference_nf = reference::normalize_tag_counted(&tau, &mut ref_steps);
        prop_assert!(tags::is_normal(&mem), "memoized nf not normal: {mem:?}");
        prop_assert!(
            reference::tag_alpha_eq(&mem, &reference_nf),
            "normal forms disagree:\n  input: {tau:?}\n  memo:  {mem:?}\n  ref:   {reference_nf:?}"
        );
        prop_assert_eq!(mem_steps, ref_steps, "β-step counts disagree on {:?}", tau);
    }

    /// Both equality modes agree with the reference on α-variant pairs
    /// (always equal) and on independently generated pairs (usually not).
    #[test]
    fn tag_equality_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let (lo, hi) = bytes.split_at(bytes.len() / 2);
        let a = tag_from(lo, "x");
        let b = tag_from(lo, "y"); // same tape, renamed binders
        let c = tag_from(hi, "x");

        prop_assert!(tags::equiv(&a, &b, Equiv::Syntactic), "α-variant must be equal: {a:?}");
        prop_assert!(reference::tag_alpha_eq(&a, &b));

        for other in [&b, &c] {
            prop_assert_eq!(
                tags::equiv(&a, other, Equiv::Syntactic),
                reference::tag_alpha_eq(&a, other),
                "Syntactic disagrees on {:?} vs {:?}", &a, other
            );
            prop_assert_eq!(
                tags::equiv(&a, other, Equiv::Normalizing),
                reference::tag_eq(&a, other),
                "Normalizing disagrees on {:?} vs {:?}", &a, other
            );
        }
    }

    /// The memoized Typerec expansion (`moper::normalize_ty`) matches the
    /// reference expansion in every dialect.
    #[test]
    fn ty_normalization_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let sigma = ty_from(&bytes, "x", false);
        for dialect in DIALECTS {
            let mem = moper::normalize_ty(&sigma, dialect);
            let reference_nf = reference::normalize_ty(&sigma, dialect);
            prop_assert!(
                reference::ty_alpha_eq(&mem, &reference_nf),
                "{dialect:?} normal forms disagree:\n  input: {sigma:?}\n  memo:  {mem:?}\n  ref:   {reference_nf:?}"
            );
        }
    }

    /// The fingerprint-skipping substitution agrees (up to α) with the
    /// pre-interning recursive reference substitution, and is itself
    /// insensitive to α-renaming of its input.
    #[test]
    fn term_substitution_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..192)) {
        let (lo, hi) = bytes.split_at(bytes.len() / 2);
        let t1 = term_from(lo, "x");
        let t2 = term_from(lo, "y"); // same tape, renamed binders
        prop_assert!(
            reference::term_alpha_eq(&t1, &t2),
            "α-variant inputs must be α-equal:\n  {t1:?}\n  {t2:?}"
        );
        let (fast, slow) = subs_from(hi);
        let out_fast = fast.term(&t1);
        let out_slow = slow.term(&t1);
        prop_assert!(
            reference::term_alpha_eq(&out_fast, &out_slow),
            "substitution paths disagree:\n  input: {t1:?}\n  fast:  {out_fast:?}\n  ref:   {out_slow:?}"
        );
        let out_variant = fast.term(&t2);
        prop_assert!(
            reference::term_alpha_eq(&out_fast, &out_variant),
            "fast path is α-sensitive:\n  {out_fast:?}\n  {out_variant:?}"
        );
    }

    /// Same agreement for values (packages carry tags, types, and regions,
    /// so all four namespaces are exercised).
    #[test]
    fn value_substitution_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let (lo, hi) = bytes.split_at(bytes.len() / 2);
        let v1 = value_from(lo, "x");
        let v2 = value_from(lo, "y");
        prop_assert!(reference::value_alpha_eq(&v1, &v2));
        let (fast, slow) = subs_from(hi);
        let out_fast = fast.value(&v1);
        let out_slow = slow.value(&v1);
        prop_assert!(
            reference::value_alpha_eq(&out_fast, &out_slow),
            "substitution paths disagree:\n  input: {v1:?}\n  fast:  {out_fast:?}\n  ref:   {out_slow:?}"
        );
        prop_assert!(reference::value_alpha_eq(&out_fast, &fast.value(&v2)));
    }

    /// A substitution whose domain misses every free variable of the term
    /// is a fingerprint-checked no-op: the *same* id comes back untouched.
    #[test]
    fn fingerprint_miss_returns_same_id(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let t = term_from(&bytes, "x");
        let v = value_from(&bytes, "x");
        let sub = Subst::new()
            .with_tag(Symbol::intern("zz!t"), Tag::Int)
            .with_rgn(Symbol::intern("zz!r"), Region::cd())
            .with_alpha(Symbol::intern("zz!a"), Ty::Int)
            .with_val(Symbol::intern("zz!x"), Value::Int(0));
        let tid = t.id();
        let vid = v.id();
        prop_assert_eq!(sub.term_id(tid), tid, "term id must be skipped unchanged");
        prop_assert_eq!(sub.value_id(vid), vid, "value id must be skipped unchanged");
    }

    /// α-renaming a runnable program is invisible to the substitution
    /// machine: identical results and identical step counts (the skip
    /// fingerprints are name-sets, so this pins down that skipping never
    /// depends on *which* bound names a program uses).
    #[test]
    fn alpha_variant_programs_run_identically(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let p1 = runnable_from(&bytes, "x");
        let p2 = runnable_from(&bytes, "y");
        prop_assert!(reference::term_alpha_eq(&p1.main, &p2.main));
        let config = MemConfig {
            region_budget: 4096,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        };
        let mut m1 = SubstMachine::load(&p1, config);
        let mut m2 = SubstMachine::load(&p2, config);
        let o1 = m1.run(10_000).expect("α-variant 1 runs");
        let o2 = m2.run(10_000).expect("α-variant 2 runs");
        match (o1, o2) {
            (Outcome::Halted(a), Outcome::Halted(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "unexpected outcomes: {a:?} vs {b:?}"),
        }
        prop_assert_eq!(m1.stats(), m2.stats(), "step counts/stats diverge under α-renaming");
    }

    /// α-equivalence (canonical-form ids) and full type equality agree
    /// with the reference on α-variants — including reversed region sets,
    /// which must compare as sets — and on unrelated pairs.
    #[test]
    fn ty_equality_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let (lo, hi) = bytes.split_at(bytes.len() / 2);
        let a = ty_from(lo, "x", false);
        let b = ty_from(lo, "y", true); // renamed binders, reversed sets
        let c = ty_from(hi, "x", false);

        prop_assert!(moper::alpha_eq_ty(&a, &b), "α-variant must be equal: {a:?}\n vs {b:?}");
        prop_assert!(reference::ty_alpha_eq(&a, &b));

        for other in [&b, &c] {
            prop_assert_eq!(
                moper::alpha_eq_ty(&a, other),
                reference::ty_alpha_eq(&a, other),
                "alpha_eq disagrees on {:?} vs {:?}", &a, other
            );
            for dialect in DIALECTS {
                prop_assert_eq!(
                    moper::ty_eq(&a, other, dialect),
                    reference::ty_eq(&a, other, dialect),
                    "{:?} ty_eq disagrees on {:?} vs {:?}", dialect, &a, other
                );
            }
        }
    }
}
