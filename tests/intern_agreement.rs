//! Differential tests for the interned tag/type layer: the memoized,
//! id-keyed normalizers and equality checks in `tags`/`moper` must agree
//! with the pre-refactor recursive implementations kept verbatim in
//! `gc_lang::reference`.
//!
//! Inputs come from byte-tape generators (the `crates/proptest` shim): a
//! tape is decoded into a well-kinded tag or a type, and decoding the same
//! tape twice with different *binder-name prefixes* yields a guaranteed
//! α-equivalent pair that differs only in bound names (and, for region
//! sets, in element order) — exercising the canonicalization paths with
//! known-positive cases, while tags/types from disjoint tapes exercise the
//! negative side.

use proptest::prelude::*;

use scavenger::gc_lang::moper;
use scavenger::gc_lang::reference;
use scavenger::gc_lang::syntax::{Dialect, Kind, Region, RegionName, Tag, Ty};
use scavenger::gc_lang::tags::{self, Equiv};
use scavenger::ir::Symbol;

const DIALECTS: [Dialect; 3] = [Dialect::Basic, Dialect::Forwarding, Dialect::Generational];

/// A cursor over the random byte tape. Exhausted tapes yield zeros, so
/// every tape decodes to *something* (usually small).
struct Tape<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tape<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Tape { bytes, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }
}

/// Deterministic binder names: decoding one tape with prefixes `"x"` and
/// `"y"` produces two trees identical up to bound-name renaming.
struct Names {
    prefix: &'static str,
    counter: u32,
}

impl Names {
    fn fresh(&mut self, class: &str) -> Symbol {
        self.counter += 1;
        Symbol::intern(&format!("{}{}!{}", self.prefix, class, self.counter))
    }
}

fn free_tag_var(b: u8) -> Symbol {
    Symbol::intern(["ft!a", "ft!b"][b as usize % 2])
}

fn free_alpha_var(b: u8) -> Symbol {
    Symbol::intern(["fa!a", "fa!b"][b as usize % 2])
}

/// A region: `cd`, a concrete name, a free region variable, or a bound one.
fn gen_region(tape: &mut Tape, renv: &[Symbol]) -> Region {
    match tape.next() % 4 {
        0 => Region::cd(),
        1 => Region::Name(RegionName(1 + tape.next() as u32 % 3)),
        2 if !renv.is_empty() => {
            let i = tape.next() as usize % renv.len();
            Region::Var(renv[i])
        }
        _ => Region::Var(Symbol::intern(["fr!a", "fr!b"][tape.next() as usize % 2])),
    }
}

/// A well-kinded tag of kind Ω (β-redexes included), mirroring the
/// generator in `crates/gc-lang/tests/tag_props.rs` but with deterministic
/// binder names so α-variant pairs can be produced from one tape.
fn gen_tag(tape: &mut Tape, env: &mut Vec<Symbol>, names: &mut Names, depth: u32) -> Tag {
    if depth == 0 {
        return if env.is_empty() || tape.next().is_multiple_of(2) {
            Tag::Int
        } else {
            let i = tape.next() as usize % env.len();
            Tag::Var(env[i])
        };
    }
    match tape.next() % 8 {
        0 => Tag::Int,
        1 => Tag::Var(free_tag_var(tape.next())),
        2 => {
            if env.is_empty() {
                Tag::Int
            } else {
                let i = tape.next() as usize % env.len();
                Tag::Var(env[i])
            }
        }
        3 => Tag::prod(
            gen_tag(tape, env, names, depth - 1),
            gen_tag(tape, env, names, depth - 1),
        ),
        4 => {
            let n = 1 + tape.next() as usize % 2;
            let args: Vec<Tag> = (0..n)
                .map(|_| gen_tag(tape, env, names, depth - 1))
                .collect();
            Tag::arrow(args)
        }
        5 => {
            let t = names.fresh("t");
            env.push(t);
            let body = gen_tag(tape, env, names, depth - 1);
            env.pop();
            Tag::exist(t, body)
        }
        // A β-redex: (λt.body) arg.
        _ => {
            let t = names.fresh("t");
            env.push(t);
            let body = gen_tag(tape, env, names, depth - 1);
            env.pop();
            let arg = gen_tag(tape, env, names, depth - 1);
            Tag::app(Tag::lam(t, body), arg)
        }
    }
}

/// A type covering every `Ty` constructor: the hard-wired operators over
/// generated tags, all three existentials (with their binders *used* in the
/// body), sums, and `Code`. `mirror` reverses generated region sets — the
/// sets must compare as sets, so a reversed set stays α-equal.
fn gen_ty(
    tape: &mut Tape,
    tenv: &mut Vec<Symbol>,
    renv: &mut Vec<Symbol>,
    aenv: &mut Vec<Symbol>,
    names: &mut Names,
    mirror: bool,
    depth: u32,
) -> Ty {
    let tag = |tape: &mut Tape, names: &mut Names, d: u32| {
        let mut env = tenv.clone();
        gen_tag(tape, &mut env, names, d)
    };
    if depth == 0 {
        return match tape.next() % 3 {
            0 => Ty::Int,
            1 if !aenv.is_empty() => {
                let i = tape.next() as usize % aenv.len();
                Ty::Alpha(aenv[i])
            }
            1 => Ty::Alpha(free_alpha_var(tape.next())),
            _ => Ty::m(gen_region(tape, renv), tag(tape, names, 1)),
        };
    }
    match tape.next() % 13 {
        0 => Ty::Int,
        1 => {
            if !aenv.is_empty() && tape.next().is_multiple_of(2) {
                let i = tape.next() as usize % aenv.len();
                Ty::Alpha(aenv[i])
            } else {
                Ty::Alpha(free_alpha_var(tape.next()))
            }
        }
        2 => Ty::m(gen_region(tape, renv), tag(tape, names, depth)),
        3 => Ty::c(
            gen_region(tape, renv),
            gen_region(tape, renv),
            tag(tape, names, depth),
        ),
        4 => Ty::mgen(
            gen_region(tape, renv),
            gen_region(tape, renv),
            tag(tape, names, depth),
        ),
        5 => Ty::prod(
            gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1),
            gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1),
        ),
        6 => Ty::sum(
            gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1),
            gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1),
        ),
        7 => {
            let inner = gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1);
            if tape.next().is_multiple_of(2) {
                Ty::Left(inner.id())
            } else {
                Ty::Right(inner.id())
            }
        }
        8 => gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1).at(gen_region(tape, renv)),
        9 => {
            let t = names.fresh("bt");
            tenv.push(t);
            let body = gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1);
            tenv.pop();
            // Pair the binder with a use, so renaming it is observable.
            let used = Ty::prod(Ty::m(gen_region(tape, renv), Tag::Var(t)), body);
            Ty::exist_tag(t, Kind::Omega, used)
        }
        10 => {
            let a = names.fresh("ba");
            let mut set = vec![gen_region(tape, renv), gen_region(tape, renv)];
            if mirror {
                set.reverse();
            }
            aenv.push(a);
            let body = gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1);
            aenv.pop();
            Ty::exist_alpha(a, set, Ty::prod(Ty::Alpha(a), body))
        }
        11 => {
            let r = names.fresh("br");
            let mut bound = vec![gen_region(tape, renv), gen_region(tape, renv)];
            if mirror {
                bound.reverse();
            }
            renv.push(r);
            let body = gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1);
            renv.pop();
            Ty::exist_rgn(r, bound, body)
        }
        _ => {
            let t = names.fresh("ct");
            let r = names.fresh("cr");
            tenv.push(t);
            renv.push(r);
            let n = 1 + tape.next() as usize % 2;
            let args: Vec<Ty> = (0..n)
                .map(|_| gen_ty(tape, tenv, renv, aenv, names, mirror, depth - 1))
                .collect();
            renv.pop();
            tenv.pop();
            Ty::code([(t, Kind::Omega)], [r], args)
        }
    }
}

fn tag_from(bytes: &[u8], prefix: &'static str) -> Tag {
    let mut tape = Tape::new(bytes);
    let mut names = Names { prefix, counter: 0 };
    gen_tag(&mut tape, &mut Vec::new(), &mut names, 4)
}

fn ty_from(bytes: &[u8], prefix: &'static str, mirror: bool) -> Ty {
    let mut tape = Tape::new(bytes);
    let mut names = Names { prefix, counter: 0 };
    gen_ty(
        &mut tape,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
        &mut names,
        mirror,
        4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The memoized normalizer and the reference normalizer agree on the
    /// normal form (up to α — capture-avoiding renames draw different
    /// fresh names) and on the *exact* β-step count, which is what feeds
    /// the machine's `Stats`.
    #[test]
    fn tag_normalization_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let tau = tag_from(&bytes, "x");
        let mut mem_steps = 0u64;
        let mem = tags::normalize_counted(&tau, &mut mem_steps);
        let mut ref_steps = 0u64;
        let reference_nf = reference::normalize_tag_counted(&tau, &mut ref_steps);
        prop_assert!(tags::is_normal(&mem), "memoized nf not normal: {mem:?}");
        prop_assert!(
            reference::tag_alpha_eq(&mem, &reference_nf),
            "normal forms disagree:\n  input: {tau:?}\n  memo:  {mem:?}\n  ref:   {reference_nf:?}"
        );
        prop_assert_eq!(mem_steps, ref_steps, "β-step counts disagree on {:?}", tau);
    }

    /// Both equality modes agree with the reference on α-variant pairs
    /// (always equal) and on independently generated pairs (usually not).
    #[test]
    fn tag_equality_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let (lo, hi) = bytes.split_at(bytes.len() / 2);
        let a = tag_from(lo, "x");
        let b = tag_from(lo, "y"); // same tape, renamed binders
        let c = tag_from(hi, "x");

        prop_assert!(tags::equiv(&a, &b, Equiv::Syntactic), "α-variant must be equal: {a:?}");
        prop_assert!(reference::tag_alpha_eq(&a, &b));

        for other in [&b, &c] {
            prop_assert_eq!(
                tags::equiv(&a, other, Equiv::Syntactic),
                reference::tag_alpha_eq(&a, other),
                "Syntactic disagrees on {:?} vs {:?}", &a, other
            );
            prop_assert_eq!(
                tags::equiv(&a, other, Equiv::Normalizing),
                reference::tag_eq(&a, other),
                "Normalizing disagrees on {:?} vs {:?}", &a, other
            );
        }
    }

    /// The memoized Typerec expansion (`moper::normalize_ty`) matches the
    /// reference expansion in every dialect.
    #[test]
    fn ty_normalization_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let sigma = ty_from(&bytes, "x", false);
        for dialect in DIALECTS {
            let mem = moper::normalize_ty(&sigma, dialect);
            let reference_nf = reference::normalize_ty(&sigma, dialect);
            prop_assert!(
                reference::ty_alpha_eq(&mem, &reference_nf),
                "{dialect:?} normal forms disagree:\n  input: {sigma:?}\n  memo:  {mem:?}\n  ref:   {reference_nf:?}"
            );
        }
    }

    /// α-equivalence (canonical-form ids) and full type equality agree
    /// with the reference on α-variants — including reversed region sets,
    /// which must compare as sets — and on unrelated pairs.
    #[test]
    fn ty_equality_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let (lo, hi) = bytes.split_at(bytes.len() / 2);
        let a = ty_from(lo, "x", false);
        let b = ty_from(lo, "y", true); // renamed binders, reversed sets
        let c = ty_from(hi, "x", false);

        prop_assert!(moper::alpha_eq_ty(&a, &b), "α-variant must be equal: {a:?}\n vs {b:?}");
        prop_assert!(reference::ty_alpha_eq(&a, &b));

        for other in [&b, &c] {
            prop_assert_eq!(
                moper::alpha_eq_ty(&a, other),
                reference::ty_alpha_eq(&a, other),
                "alpha_eq disagrees on {:?} vs {:?}", &a, other
            );
            for dialect in DIALECTS {
                prop_assert_eq!(
                    moper::ty_eq(&a, other, dialect),
                    reference::ty_eq(&a, other, dialect),
                    "{:?} ty_eq disagrees on {:?} vs {:?}", dialect, &a, other
                );
            }
        }
    }
}
