//! Differential telemetry tests over the program battery: for every
//! collector, every interpreter backend must emit the *same sequence* of
//! GC events (same kinds, same steps, same words copied), the recorded
//! metrics must agree with the machine statistics, and the JSON-lines
//! export must validate against the trace schema.

use scavenger::telemetry::{validate_jsonl_trace, GcEvent, Recorder, SharedObserver};
use scavenger::{Backend, Collector, RunOptions};

/// Allocation-heavy members of the battery (tests/battery.rs) — the ones
/// that actually trigger collections at a 64-word budget — plus one
/// allocation-light control that never collects.
const PROGRAMS: &[(&str, &str, i64)] = &[
    ("arith", "1 + 2 * 3 - 4", 3),
    (
        "factorial",
        "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 9",
        362_880,
    ),
    (
        "fibonacci",
        "fun fib (n : int) : int = if0 n then 0 else if0 n - 1 then 1 else fib (n - 1) + fib (n - 2)\n fib 12",
        144,
    ),
    (
        "list-sum",
        "fun build (n : int) : int * int = if0 n then (0, 0) else \
           (let rest = build (n - 1) in (n + fst rest, n))\n \
         fst (build 40)",
        820,
    ),
    (
        "gc-stress",
        "fun churn (n : int) : int = if0 n then 0 else \
           (let p = ((n, n), (n, n)) in fst (fst p) - n + churn (n - 1))\n \
         churn 60",
        0,
    ),
];

fn record_run(
    collector: Collector,
    backend: Backend,
    src: &str,
    expected: i64,
    label: &str,
) -> Recorder {
    let recorder = Recorder::new().into_shared();
    let obs: SharedObserver = recorder.clone();
    let opts = RunOptions::builder()
        .collector(collector)
        .backend(backend)
        .budget(64)
        .observer(obs, 50)
        .build();
    let run = opts
        .compile(src)
        .unwrap_or_else(|e| panic!("{label}: compile failed: {e}"))
        .run_with(&opts)
        .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));
    assert_eq!(run.result, expected, "{label}: wrong result");
    let rec = recorder.borrow().clone();
    // Recorded metrics must agree with the machine's own statistics.
    assert_eq!(
        rec.metrics.collections, run.stats.collections,
        "{label}: collection counts disagree"
    );
    assert_eq!(
        rec.metrics.words_reclaimed, run.stats.words_reclaimed,
        "{label}: reclaimed words disagree"
    );
    assert_eq!(
        rec.metrics.regions_allocated, run.stats.regions_created,
        "{label}: region counts disagree"
    );
    rec
}

#[test]
fn backends_emit_identical_event_sequences() {
    for (name, src, expected) in PROGRAMS {
        for collector in Collector::ALL {
            let label = format!("{name}/{collector}");
            let oracle = record_run(collector, Backend::Subst, src, *expected, &label);
            for backend in Backend::ALL {
                if backend == Backend::Subst {
                    continue;
                }
                let label = format!("{label}/{backend}");
                let rec = record_run(collector, backend, src, *expected, &label);
                assert_eq!(
                    oracle.events.len(),
                    rec.events.len(),
                    "{label}: event counts diverge"
                );
                for (i, (a, b)) in oracle.events.iter().zip(rec.events.iter()).enumerate() {
                    assert_eq!(a, b, "{label}: event {i} diverges");
                }
                assert_eq!(oracle.metrics, rec.metrics, "{label}: metrics diverge");
            }
        }
    }
}

#[test]
fn traces_validate_and_reflect_collector_behaviour() {
    for (name, src, expected) in PROGRAMS {
        for collector in Collector::ALL {
            let label = format!("{name}/{collector}");
            let rec = record_run(collector, Backend::Env, src, *expected, &label);
            let trace = rec.to_jsonl();
            let summary = validate_jsonl_trace(&trace)
                .unwrap_or_else(|e| panic!("{label}: trace invalid: {e}"));
            assert_eq!(summary.count("halt"), 1, "{label}");
            assert_eq!(
                summary.count("gc_begin"),
                summary.count("gc_end"),
                "{label}: unbalanced collections"
            );
            assert_eq!(
                summary.count("gc_begin") as u64,
                rec.metrics.collections,
                "{label}"
            );
            if *name != "arith" {
                assert!(summary.count("gc_begin") > 0, "{label}: never collected");
            }
            if collector == Collector::Generational && *name != "arith" {
                let promoted = rec
                    .events
                    .iter()
                    .filter(|e| matches!(e, GcEvent::Copy { promoted: true, .. }))
                    .count();
                assert!(promoted > 0, "{label}: minor GCs must promote survivors");
            }
        }
    }
}
