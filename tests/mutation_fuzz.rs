//! Checker-soundness fuzzing: randomly corrupt well-typed λGC programs
//! (swap regions, perturb tags, truncate argument lists, change projection
//! indices) and check the two sides of the soundness coin:
//!
//! * if the typechecker **accepts** the mutant, the machine must not get
//!   stuck (progress — the checker is *sound*);
//! * most mutants should be **rejected** (the checker is not vacuous;
//!   tracked as a sanity ratio, not an absolute).
//!
//! The interesting direction is the first: a bug in the typing rules that
//! accepts a bad program shows up here as a stuck machine.

use proptest::prelude::*;

use ps_gc_lang::faults::{FaultKind, FaultPlan};
use ps_gc_lang::machine::Machine;
use ps_gc_lang::memory::{GrowthPolicy, MemConfig};
use ps_gc_lang::syntax::{Op, Region, Tag, Term};
use ps_gc_lang::tyck::Checker;
use scavenger::{Backend, Collector, Pipeline, PipelineError, RunOptions};

/// One structural mutation, selected and located by the byte tape.
fn mutate_term(e: &Term, tape: &mut impl FnMut() -> u8) -> Term {
    // With probability ~1/4 mutate here; otherwise descend.
    if tape().is_multiple_of(4) {
        match (tape() % 4, e) {
            // Swap a projection index.
            (
                0,
                Term::Let {
                    x,
                    op: Op::Proj(i, v),
                    body,
                },
            ) => {
                return Term::Let {
                    x: *x,
                    op: Op::Proj(3 - i, v.clone()),
                    body: *body,
                }
            }
            // Retarget a put to another region in scope… approximated by
            // swapping its region for cd (always ill-typed) or keeping it.
            (
                1,
                Term::Let {
                    x,
                    op: Op::Put(_, v),
                    body,
                },
            ) => {
                return Term::Let {
                    x: *x,
                    op: Op::Put(Region::cd(), v.clone()),
                    body: *body,
                }
            }
            // Perturb an application's tag arguments.
            (
                2,
                Term::App {
                    f,
                    tags,
                    regions,
                    args,
                },
            ) if !tags.is_empty() => {
                let mut tags = tags.clone();
                tags[0] = Tag::prod(tags[0].clone(), Tag::Int);
                return Term::App {
                    f: f.clone(),
                    tags,
                    regions: regions.clone(),
                    args: args.clone(),
                };
            }
            // Drop an argument.
            (
                3,
                Term::App {
                    f,
                    tags,
                    regions,
                    args,
                },
            ) if !args.is_empty() => {
                let mut args = args.clone();
                args.pop();
                return Term::App {
                    f: f.clone(),
                    tags: tags.clone(),
                    regions: regions.clone(),
                    args,
                };
            }
            _ => {}
        }
    }
    match e {
        Term::Let { x, op, body } => Term::Let {
            x: *x,
            op: op.clone(),
            body: (mutate_term(body, tape)).into(),
        },
        Term::IfGc { rho, full, cont } => Term::IfGc {
            rho: *rho,
            full: (mutate_term(full, tape)).into(),
            cont: (mutate_term(cont, tape)).into(),
        },
        Term::If0 {
            scrut,
            zero,
            nonzero,
        } => Term::If0 {
            scrut: scrut.clone(),
            zero: (mutate_term(zero, tape)).into(),
            nonzero: (mutate_term(nonzero, tape)).into(),
        },
        Term::OpenTag { pkg, tvar, x, body } => Term::OpenTag {
            pkg: pkg.clone(),
            tvar: *tvar,
            x: *x,
            body: (mutate_term(body, tape)).into(),
        },
        Term::LetRegion { rvar, body } => Term::LetRegion {
            rvar: *rvar,
            body: (mutate_term(body, tape)).into(),
        },
        Term::Only { regions, body } => Term::Only {
            regions: regions.clone(),
            body: (mutate_term(body, tape)).into(),
        },
        other => other.clone(),
    }
}

const SRC: &str = "fun build (n : int) : int * int = if0 n then (0, 0) else \
    (let rest = build (n - 1) in (n + fst rest, n))\n fst (build 8)";

/// Every fault class, injected into every collector on both interpreter
/// backends, must be caught by the per-step audit: the run ends in
/// [`PipelineError::InvariantViolation`], never in a clean halt. (The
/// adversarial counterpart of the audited-clean-run battery test.)
#[test]
fn every_fault_class_is_detected_on_every_collector_and_backend() {
    for kind in FaultKind::ALL {
        for collector in Collector::ALL {
            for backend in Backend::ALL {
                // Ψ tracking upgrades the audit to the full Fig. 7
                // judgement, making every class detectable on every
                // dialect (flip-tag on λGC/λGCgen falls back to a value
                // smash that only Ψ conformance distinguishes).
                let opts = RunOptions::builder()
                    .collector(collector)
                    .backend(backend)
                    .budget(64)
                    .track_types(true)
                    .verify_every(1)
                    .inject(FaultPlan {
                        kind,
                        step: 20,
                        seed: 1,
                    })
                    .build();
                let compiled = opts.compile(SRC).expect("compiles");
                match compiled.run_with(&opts) {
                    Err(PipelineError::InvariantViolation(e)) => {
                        assert!(
                            !e.to_string().is_empty(),
                            "{kind}/{collector}/{backend}: empty violation"
                        );
                    }
                    other => {
                        panic!("{kind}/{collector}/{backend}: fault escaped the auditor: {other:?}")
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn accepted_mutants_never_get_stuck(bytes in proptest::collection::vec(any::<u8>(), 4..64)) {
        let compiled = Pipeline::new(Collector::Basic)
            .region_budget(64)
            .compile(SRC)
            .expect("base program compiles");
        let mut program = compiled.program.clone();

        // Mutate one mutator block (never the collector: those are covered
        // by the broken_collectors suite) or the main term.
        let mut pos = 0usize;
        let mut tape = || {
            let b = bytes.get(pos).copied().unwrap_or(0);
            pos += 1;
            b
        };
        let n_collector = Collector::Basic.image().code.len();
        let choice = tape() as usize;
        let n_mutator = program.code.len() - n_collector;
        if n_mutator > 0 && choice % (n_mutator + 1) != n_mutator {
            let idx = n_collector + choice % n_mutator;
            let body = program.code[idx].body.clone();
            program.code[idx].body = mutate_term(&body, &mut tape);
        } else {
            program.main = mutate_term(&program.main.clone(), &mut tape);
        }

        match Checker::check_program(&program) {
            Err(_) => {
                // Rejected: fine (and the common case).
            }
            Ok(()) => {
                // Accepted: progress must hold. The mutation may change the
                // *result* (e.g. a swapped projection of an int×int pair is
                // still well typed) — soundness only promises no stuck
                // state. Every interpreter backend must agree on whatever
                // the mutant does, statistics included.
                let config = MemConfig {
                    region_budget: 64,
                    growth: GrowthPolicy::Adaptive,
                    track_types: false,
                    max_heap_words: None,
                    page_words: 512,
                };
                let mut oracle: Box<dyn Machine> = Backend::Subst.load(&program, config);
                let oracle_outcome = oracle
                    .run(5_000_000)
                    .unwrap_or_else(|e| panic!("checker accepted a stuck program: {e}"));
                for backend in Backend::ALL {
                    if backend == Backend::Subst {
                        continue;
                    }
                    let mut m = backend.load(&program, config);
                    match m.run(5_000_000) {
                        Ok(o) => {
                            prop_assert_eq!(
                                &o, &oracle_outcome,
                                "{} disagrees on an accepted mutant", backend
                            );
                            prop_assert_eq!(
                                m.stats(), oracle.stats(),
                                "{} stats disagree", backend
                            );
                        }
                        Err(e) => prop_assert!(
                            false,
                            "{backend} backend stuck on an accepted program: {e}"
                        ),
                    }
                }
            }
        }
    }
}
