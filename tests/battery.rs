//! The cross-collector program battery: a suite of named source programs,
//! each run under all three certified collectors at several region budgets
//! and compared against the reference evaluator.
//!
//! This is the repository's broadest end-to-end net: any divergence
//! between a collector and the oracle — or between budgets (i.e. between
//! "no collections" and "many collections"), or between the substitution
//! and environment interpreter backends — fails here with the program
//! named.

use scavenger::telemetry::Recorder;
use scavenger::{AuditMode, Backend, Collector, Pipeline, RunOptions};

const PROGRAMS: &[(&str, &str, i64)] = &[
    ("arith", "1 + 2 * 3 - 4", 3),
    ("pairs", "fst (1, 2) + fst (snd (3, (4, 5))) + snd (snd (3, (4, 5)))", 10),
    (
        "factorial",
        "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 9",
        362_880,
    ),
    (
        "fibonacci",
        "fun fib (n : int) : int = if0 n then 0 else if0 n - 1 then 1 else fib (n - 1) + fib (n - 2)\n fib 14",
        377,
    ),
    (
        "ackermann-lite",
        "fun ack (p : int * int) : int = \
           if0 fst p then snd p + 1 else \
           if0 snd p then ack ((fst p - 1, 1)) else \
           ack ((fst p - 1, ack ((fst p, snd p - 1))))\n \
         ack ((2, 3))",
        9,
    ),
    (
        "list-sum",
        "fun build (n : int) : int * int = if0 n then (0, 0) else \
           (let rest = build (n - 1) in (n + fst rest, n))\n \
         fst (build 40)",
        820,
    ),
    (
        "higher-order",
        "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\n\
         fun thrice (f : int -> int) : int -> int = fn (x : int) => f (f (f x))\n\
         (twice (thrice (fn (y : int) => y + 1))) 0",
        6,
    ),
    (
        "closure-env",
        "let a = 3 in let b = 4 in let c = 5 in \
         (fn (x : int) => a * x + b * x + c) 2",
        19,
    ),
    (
        "curried-add",
        "let add = fn (x : int) => fn (y : int) => x + y in \
         (add 30) 12",
        42,
    ),
    (
        "church-pairs",
        "fun applyp (p : (int -> int) * int) : int = (fst p) (snd p)\n \
         applyp ((fn (x : int) => x * x, 7))",
        49,
    ),
    (
        "mutual-recursion",
        "fun even (n : int) : int = if0 n then 1 else odd (n - 1)\n\
         fun odd (n : int) : int = if0 n then 0 else even (n - 1)\n\
         even 17 * 10 + odd 17",
        1,
    ),
    (
        "deep-shadowing",
        "let x = 1 in let x = x + 1 in let x = x * x in let x = x - 1 in x",
        3,
    ),
    (
        "function-results",
        "fun mk (n : int) : int -> int = fn (x : int) => x + n\n\
         fun apply2 (fs : (int -> int) * (int -> int)) : int = (fst fs) ((snd fs) 0)\n\
         apply2 ((mk 1, mk 2))",
        3,
    ),
    (
        "gc-stress",
        "fun churn (n : int) : int = if0 n then 0 else \
           (let p = ((n, n), (n, n)) in fst (fst p) - n + churn (n - 1))\n \
         churn 60",
        0,
    ),
];

#[test]
fn battery_all_collectors_all_budgets() {
    // Every program/collector/budget combination runs on EVERY interpreter
    // backend (`Backend::ALL`, so a new backend joins the matrix
    // automatically); all must agree with the expected result and with the
    // substitution oracle — including the full statistics, which every
    // backend promises to reproduce bit-for-bit.
    for (name, src, expected) in PROGRAMS {
        for collector in [
            Collector::Basic,
            Collector::Forwarding,
            Collector::Generational,
        ] {
            for budget in [64usize, 256, 1 << 22] {
                let compiled = Pipeline::new(collector)
                    .region_budget(budget)
                    .compile(src)
                    .unwrap_or_else(|e| panic!("{name}/{collector}: compile failed: {e}"));
                let oracle = compiled
                    .clone()
                    .with_backend(Backend::Subst)
                    .run(500_000_000)
                    .unwrap_or_else(|e| panic!("{name}/{collector}/budget {budget}/subst: {e}"));
                assert_eq!(
                    oracle.result, *expected,
                    "{name}/{collector}/budget {budget}/subst"
                );
                for backend in Backend::ALL {
                    if backend == Backend::Subst {
                        continue;
                    }
                    let run = compiled
                        .clone()
                        .with_backend(backend)
                        .run(500_000_000)
                        .unwrap_or_else(|e| {
                            panic!("{name}/{collector}/budget {budget}/{backend}: {e}")
                        });
                    assert_eq!(
                        run.result, oracle.result,
                        "{name}/{collector}/budget {budget}/{backend}: result disagrees"
                    );
                    assert_eq!(
                        run.stats, oracle.stats,
                        "{name}/{collector}/budget {budget}/{backend}: stats disagree"
                    );
                }
            }
        }
    }
}

#[test]
fn battery_whole_programs_typecheck() {
    for (name, src, _) in PROGRAMS {
        for collector in [
            Collector::Basic,
            Collector::Forwarding,
            Collector::Generational,
        ] {
            Pipeline::new(collector)
                .compile(src)
                .unwrap_or_else(|e| panic!("{name}/{collector}: {e}"))
                .typecheck()
                .unwrap_or_else(|e| panic!("{name}/{collector}: certification failed: {e}"));
        }
    }
}

#[test]
fn battery_small_budgets_actually_collect() {
    // The battery is only meaningful if the small-budget runs really do
    // exercise the collectors; verify for the allocation-heavy programs.
    for (name, src, _) in PROGRAMS
        .iter()
        .filter(|(n, ..)| ["factorial", "fibonacci", "list-sum", "gc-stress"].contains(n))
    {
        for collector in [
            Collector::Basic,
            Collector::Forwarding,
            Collector::Generational,
        ] {
            let run = Pipeline::new(collector)
                .region_budget(64)
                .compile(src)
                .unwrap()
                .run(500_000_000)
                .unwrap();
            assert!(
                run.stats.collections > 0,
                "{name}/{collector} never collected"
            );
        }
    }
}

#[test]
fn battery_audited_runs_are_byte_identical_to_unaudited_runs() {
    // Two byte-identity contracts at once, across every backend:
    //
    // * the heap auditor must be purely observational — with
    //   `verify_every` on, a clean run returns the same result, the same
    //   statistics, and a byte-identical telemetry trace;
    // * every backend must produce the same statistics and the same
    //   telemetry event stream as the substitution oracle.
    //
    // The recorder carries no meta header here so traces from different
    // backends are directly comparable byte-for-byte.
    fn traced_run(opts: &RunOptions, src: &str) -> (i64, ps_gc_lang::machine::Stats, String) {
        let rec = Recorder::new().into_shared();
        let mut opts = opts.clone();
        opts.observer = Some(rec.clone());
        let compiled = opts.compile(src).expect("compiles");
        let run = compiled.run_with(&opts).expect("clean run");
        let jsonl = rec.borrow().to_jsonl();
        (run.result, run.stats, jsonl)
    }

    // The incremental (dirty-page) auditor is cheap enough to run at full
    // blast on EVERY battery program; the full-walk mode is additionally
    // compared on the quick programs (every step) and on an
    // allocation-heavy one (sparsely — the full walk is the expensive
    // strategy the incremental auditor exists to replace).
    let quick = [
        "arith",
        "pairs",
        "closure-env",
        "deep-shadowing",
        "curried-add",
    ];
    for (name, src, expected) in PROGRAMS {
        let full_every = if quick.contains(name) {
            Some(1)
        } else if *name == "gc-stress" {
            Some(64)
        } else {
            None
        };
        for collector in [
            Collector::Basic,
            Collector::Forwarding,
            Collector::Generational,
        ] {
            // The substitution machine is the oracle: first in ALL.
            let mut oracle: Option<(i64, ps_gc_lang::machine::Stats, String)> = None;
            for backend in Backend::ALL {
                let mut opts = RunOptions::builder()
                    .collector(collector)
                    .budget(64)
                    .track_types(true)
                    .backend(backend)
                    .build();
                let (plain_result, plain_stats, plain_trace) = traced_run(&opts, src);
                assert_eq!(plain_result, *expected, "{name}/{collector}/{backend}");
                match &oracle {
                    None => oracle = Some((plain_result, plain_stats.clone(), plain_trace.clone())),
                    Some((r, s, t)) => {
                        assert_eq!(plain_result, *r, "{name}/{collector}/{backend}");
                        assert_eq!(
                            &plain_stats, s,
                            "{name}/{collector}/{backend}: stats differ from the oracle"
                        );
                        assert_eq!(
                            &plain_trace, t,
                            "{name}/{collector}/{backend}: telemetry must be byte-identical \
                             to the oracle"
                        );
                    }
                }
                opts.verify_every = 1;
                opts.audit = AuditMode::Incremental;
                let (audited_result, audited_stats, audited_trace) = traced_run(&opts, src);
                assert_eq!(audited_result, plain_result, "{name}/{collector}/{backend}");
                assert_eq!(audited_stats, plain_stats, "{name}/{collector}/{backend}");
                assert_eq!(
                    audited_trace, plain_trace,
                    "{name}/{collector}/{backend}: incremental-audited trace must be \
                     byte-identical"
                );
                if let Some(every) = full_every {
                    opts.verify_every = every;
                    opts.audit = AuditMode::Full;
                    let (full_result, full_stats, full_trace) = traced_run(&opts, src);
                    assert_eq!(full_result, plain_result, "{name}/{collector}/{backend}");
                    assert_eq!(full_stats, plain_stats, "{name}/{collector}/{backend}");
                    assert_eq!(
                        full_trace, plain_trace,
                        "{name}/{collector}/{backend}: full-audited trace must be \
                         byte-identical"
                    );
                }
            }
        }
    }
}

#[test]
fn oracle_agreement() {
    // The hardcoded expectations must agree with the reference evaluator
    // (guards against typos in the table itself).
    for (name, src, expected) in PROGRAMS {
        let p = ps_lambda::parse::parse_program(src).unwrap();
        ps_lambda::typecheck::check_program(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            ps_lambda::eval::run_program(&p, 100_000_000).unwrap(),
            *expected,
            "{name}"
        );
    }
}
